// Package ensemble runs fleets of independent random-walk samplers in
// parallel — the practical deployment mode for OSN crawling, where each
// crawler account has its own rate limit and cache — and merges their
// estimates.
//
// Deprecated: this package predates the declarative session API and is
// kept as a thin compatibility shim. Run is now a wrapper over
// session.Run (with the legacy "ensemble" seed stream, so existing
// seeds reproduce the same walks); new code should build a session.Spec
// directly, which additionally provides confidence intervals, burn-in,
// thinning and multiple estimators per run.
package ensemble

import (
	"context"
	"errors"

	"histwalk/internal/core"
	"histwalk/internal/engine"
	"histwalk/internal/estimate"
	"histwalk/internal/graph"
	"histwalk/internal/session"
)

// Config parameterizes a parallel sampling run.
//
// Deprecated: use session.Spec.
type Config struct {
	// Graph is the network to sample.
	Graph *graph.Graph
	// Factory builds one walker per chain.
	Factory core.Factory
	// Design selects the estimator correction (DesignFor the factory's
	// stationary distribution).
	Design estimate.Design
	// Attr is the measure attribute ("degree" uses the node degree).
	Attr string
	// Chains is the number of independent walkers (>= 1).
	Chains int
	// BudgetPerChain is each walker's unique-query budget.
	BudgetPerChain int
	// MaxStepsPerChain caps each walk (0 = 200× budget).
	MaxStepsPerChain int
	// Seed derives each chain's seed (through the engine's mixer).
	Seed int64
	// Parallelism caps concurrent chains on the trial-execution engine
	// (0 = Chains). Results are identical for any value.
	Parallelism int
}

// Result is the merged outcome of a parallel sampling run.
//
// Deprecated: use session.Result.
type Result struct {
	// Estimate is the pooled estimate over all chains' samples.
	Estimate float64
	// PerChain holds each chain's own estimate.
	PerChain []float64
	// GelmanRubin is R̂ over the chains' sample paths (0 when not
	// computable, e.g. a single chain).
	GelmanRubin float64
	// TotalQueries sums the unique queries across chains (each crawler
	// has its own cache, so queries are not shared).
	TotalQueries int
	// TotalSteps sums the transitions across chains.
	TotalSteps int
}

// ensembleStream is the legacy seed stream, preserved so runs keep
// reproducing the exact walks they produced before the session API.
var ensembleStream = engine.StreamID("ensemble")

// Run executes the ensemble through session.Run. Chains run
// concurrently; the merge is deterministic given Config.Seed regardless
// of scheduling.
//
// Deprecated: use session.Run.
func Run(cfg Config) (*Result, error) {
	if cfg.Graph == nil {
		return nil, errors.New("ensemble: nil graph")
	}
	if cfg.Chains < 1 {
		return nil, errors.New("ensemble: Chains must be >= 1")
	}
	if cfg.BudgetPerChain < 1 {
		return nil, errors.New("ensemble: BudgetPerChain must be >= 1")
	}
	design := session.DesignDegreeProportional
	if cfg.Design == estimate.Uniform {
		design = session.DesignUniform
	}
	maxSteps := cfg.MaxStepsPerChain
	if maxSteps < 0 {
		maxSteps = 0
	}
	par := cfg.Parallelism
	if par < 0 {
		par = 0
	}
	res, err := session.Run(context.Background(), session.Spec{
		Graph:      cfg.Graph,
		Walker:     cfg.Factory,
		Design:     design,
		Estimators: []session.EstimatorSpec{{Kind: session.AggMean, Attr: cfg.Attr}},
		Budget:     cfg.BudgetPerChain,
		MaxSteps:   maxSteps,
		Chains:     cfg.Chains,
		Workers:    par,
		Seed:       cfg.Seed,
		Stream:     ensembleStream,
	})
	if err != nil {
		return nil, err
	}
	e := res.Estimates[0]
	return &Result{
		Estimate:     e.Point,
		PerChain:     e.PerChain,
		GelmanRubin:  e.GelmanRubin,
		TotalQueries: res.TotalQueries,
		TotalSteps:   res.TotalSteps,
	}, nil
}
