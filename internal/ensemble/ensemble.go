// Package ensemble runs fleets of independent random-walk samplers in
// parallel — the practical deployment mode for OSN crawling, where each
// crawler account has its own rate limit and cache — and merges their
// estimates. It also exposes the per-chain sample paths so convergence
// diagnostics (Gelman–Rubin across chains) can certify the result.
//
// The design follows the observation of Alon et al. ("many random walks
// are faster than one", cited as [3] by the paper) that independent
// parallel walks cover a graph faster than one long walk of the same
// total length.
package ensemble

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"histwalk/internal/access"
	"histwalk/internal/core"
	"histwalk/internal/diagnostics"
	"histwalk/internal/engine"
	"histwalk/internal/estimate"
	"histwalk/internal/graph"
)

// Config parameterizes a parallel sampling run.
type Config struct {
	// Graph is the network to sample.
	Graph *graph.Graph
	// Factory builds one walker per chain.
	Factory core.Factory
	// Design selects the estimator correction (DesignFor the factory's
	// stationary distribution).
	Design estimate.Design
	// Attr is the measure attribute ("degree" uses the node degree).
	Attr string
	// Chains is the number of independent walkers (>= 1).
	Chains int
	// BudgetPerChain is each walker's unique-query budget.
	BudgetPerChain int
	// MaxStepsPerChain caps each walk (0 = 200× budget).
	MaxStepsPerChain int
	// Seed derives each chain's seed (through the engine's mixer).
	Seed int64
	// Parallelism caps concurrent chains on the trial-execution engine
	// (0 = Chains). Results are identical for any value.
	Parallelism int
}

// Result is the merged outcome of a parallel sampling run.
type Result struct {
	// Estimate is the pooled estimate over all chains' samples.
	Estimate float64
	// PerChain holds each chain's own estimate.
	PerChain []float64
	// GelmanRubin is R̂ over the chains' sample paths (NaN when not
	// computable, e.g. a single chain).
	GelmanRubin float64
	// TotalQueries sums the unique queries across chains (each crawler
	// has its own cache, so queries are not shared).
	TotalQueries int
	// TotalSteps sums the transitions across chains.
	TotalSteps int
}

// Run executes the ensemble on the worker-pool engine. Chains run
// concurrently; the merge is deterministic given Config.Seed regardless
// of scheduling.
func Run(cfg Config) (*Result, error) {
	if cfg.Graph == nil {
		return nil, errors.New("ensemble: nil graph")
	}
	if cfg.Chains < 1 {
		return nil, errors.New("ensemble: Chains must be >= 1")
	}
	if cfg.BudgetPerChain < 1 {
		return nil, errors.New("ensemble: BudgetPerChain must be >= 1")
	}
	maxSteps := cfg.MaxStepsPerChain
	if maxSteps <= 0 {
		maxSteps = 200 * cfg.BudgetPerChain
	}
	par := cfg.Parallelism
	if par <= 0 || par > cfg.Chains {
		par = cfg.Chains
	}

	outs := make([]chainOut, cfg.Chains)
	eng := engine.New(engine.Options{Workers: par})
	err := eng.Each(context.Background(), cfg.Chains, func(_ context.Context, c int) error {
		outs[c] = runChain(cfg, c, maxSteps)
		if outs[c].err != nil {
			return fmt.Errorf("ensemble: chain %d: %w", c, outs[c].err)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	res := &Result{}
	pooled := estimate.NewMean(cfg.Design)
	var chains [][]float64
	minLen := -1
	for c := range outs {
		o := &outs[c]
		chain := estimate.NewMean(cfg.Design)
		for i := range o.values {
			if err := pooled.Add(o.values[i], o.degrees[i]); err != nil {
				return nil, err
			}
			if err := chain.Add(o.values[i], o.degrees[i]); err != nil {
				return nil, err
			}
		}
		est, err := chain.Estimate()
		if err != nil {
			return nil, fmt.Errorf("ensemble: chain %d produced no samples", c)
		}
		res.PerChain = append(res.PerChain, est)
		res.TotalQueries += o.queries
		res.TotalSteps += o.steps
		chains = append(chains, o.values)
		if minLen < 0 || len(o.values) < minLen {
			minLen = len(o.values)
		}
	}
	est, err := pooled.Estimate()
	if err != nil {
		return nil, err
	}
	res.Estimate = est

	// R̂ over equal-length prefixes of the chains' raw measure series.
	if cfg.Chains >= 2 && minLen >= 4 {
		trimmed := make([][]float64, len(chains))
		for i, c := range chains {
			trimmed[i] = c[:minLen]
		}
		r, err := diagnostics.GelmanRubin(trimmed)
		if err == nil {
			res.GelmanRubin = r
		}
	}
	return res, nil
}

// chainOut is one chain's raw sample path and accounting.
type chainOut struct {
	values  []float64
	degrees []int
	queries int
	steps   int
	err     error
}

// ensembleStream separates ensemble chain seeds from the experiment
// harness's trial seeds under a shared master seed.
var ensembleStream = engine.StreamID("ensemble")

// runChain executes one walker to its budget.
func runChain(cfg Config, c, maxSteps int) (out chainOut) {
	rng := rand.New(rand.NewSource(engine.TrialSeed(cfg.Seed, ensembleStream, c)))
	sim := access.NewSimulator(cfg.Graph)
	n := cfg.Graph.NumNodes()
	if n == 0 {
		out.err = errors.New("empty graph")
		return
	}
	start := graph.Node(rng.Intn(n))
	for tries := 0; cfg.Graph.Degree(start) == 0 && tries < 10*n; tries++ {
		start = graph.Node(rng.Intn(n))
	}
	w := cfg.Factory.New(sim, start, rng)
	for sim.QueryCost() < cfg.BudgetPerChain && out.steps < maxSteps {
		v, err := w.Step()
		if err != nil {
			out.err = err
			return
		}
		deg := cfg.Graph.Degree(v)
		val := float64(deg)
		if cfg.Attr != "" && cfg.Attr != "degree" {
			x, ok := cfg.Graph.AttrValue(cfg.Attr, v)
			if !ok {
				out.err = fmt.Errorf("graph lacks attribute %q", cfg.Attr)
				return
			}
			val = x
		}
		out.values = append(out.values, val)
		out.degrees = append(out.degrees, deg)
		out.steps++
		if sim.QueryCost() >= cfg.Graph.NumNodes() {
			break // whole graph cached; budget unreachable
		}
	}
	out.queries = sim.QueryCost()
	return
}
