package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/exposition.golden")

// TestPrometheusExpositionGolden pins the full exposition byte-for-byte
// against a golden file: HELP/TYPE ordering, name sorting, integer vs
// float rendering, cumulative histogram buckets with trailing-bucket
// elision, and the +Inf/sum/count tail. A fresh registry (no runtime
// gauges) keeps the output deterministic.
func TestPrometheusExpositionGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("histwalk_demo_fetches_total", "Total fetches issued.")
	c.Add(42)
	r.Counter("histwalk_demo_nohelp_total", "") // no HELP line
	g := r.Gauge("histwalk_demo_inflight", "Speculative fetches in flight.")
	g.Set(3)
	r.GaugeFunc("histwalk_demo_ratio", "A scrape-time float.", func() float64 { return 0.5 })
	r.CounterFunc("histwalk_demo_scrapes_total", "A scrape-time counter.", func() float64 { return 7 })
	h := r.Histogram("histwalk_demo_fetch_seconds", "Fetch latency.")
	h.Observe(0)
	h.Observe(1)                      // bucket 1
	h.Observe(900 * time.Nanosecond)  // bucket 10
	h.Observe(time.Microsecond)       // bucket 10
	h.Observe(3 * time.Millisecond)   // bucket 22
	h.Observe(time.Duration(1) << 38) // overflow bucket
	empty := r.Histogram("histwalk_demo_empty_seconds", "Never observed.")
	_ = empty

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "exposition.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update-golden to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition drifted from golden file.\n--- got ---\n%s--- want ---\n%s", buf.Bytes(), want)
	}
}
