// Package obs is the process-wide observability substrate: a metrics
// registry whose record paths (counter increment, gauge set, histogram
// observation) are zero-allocation atomic operations — cheap enough to
// sit on the access hot path without breaking the walk's 0-alloc
// contract — plus Prometheus text exposition (no external deps), a
// JSONL span tracer for job/chain/fetch lifecycles (see trace.go), and
// runtime gauges (goroutines, heap, GC pauses; see runtime.go).
//
// The house determinism invariant extends to this package by
// construction: nothing here consumes RNG, takes locks on a record
// path, or feeds back into a walker's decisions, so trajectories and
// per-chain query costs are bit-identical with instrumentation enabled
// (pinned by the session layer's observability parity test).
//
// Layering: obs depends only on the standard library, so every other
// package (access, engine, session, service, the commands) can
// instrument itself against the Default registry without import
// cycles. Registration is cheap but not hot-path-safe (it takes the
// registry lock); packages register their metrics once in package-level
// vars and only touch the returned handles afterwards.
package obs

import (
	"fmt"
	"io"
	"math/bits"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The zero value is
// usable; Inc/Add are single atomic adds (0 allocs). By Prometheus
// convention counter names end in _total.
type Counter struct{ v atomic.Int64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative n is a programming error and is ignored —
// counters never go down).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down (queue depths, in-flight
// windows). The zero value is usable; Set/Add are single atomic ops.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBuckets is the fixed bucket count of a Histogram: slots 0
// through histBuckets-2 hold observations by bit length (bucket i
// counts durations d with bits.Len64(d) == i, i.e. d in
// [2^(i-1), 2^i-1] nanoseconds), and the last slot is the overflow
// bucket. 39 log₂ boundaries span 1ns to (2^38-1)ns ≈ 275s — queue
// waits, run durations and fetch latencies all land well inside.
const histBuckets = 40

// Histogram is a fixed-bucket log₂ latency histogram. Observe is
// zero-allocation: one bits.Len64 plus three atomic adds, no locks —
// safe for concurrent use and cheap enough for per-fetch call sites.
// Bucket boundaries are powers of two in nanoseconds; the Prometheus
// exposition renders them as seconds with cumulative counts.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
}

// Observe records one duration. Negative durations clamp to zero.
func (h *Histogram) Observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	i := bits.Len64(uint64(ns))
	if i > histBuckets-1 {
		i = histBuckets - 1
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
}

// Since records the elapsed time from t0, a convenience for the
// common defer/latency pattern.
func (h *Histogram) Since(t0 time.Time) { h.Observe(time.Since(t0)) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Bucket returns the raw (non-cumulative) count of bucket i; i must be
// in [0, histBuckets). Exposed for boundary tests.
func (h *Histogram) Bucket(i int) int64 { return h.buckets[i].Load() }

// NumBuckets returns the fixed bucket count (including overflow).
func NumBuckets() int { return histBuckets }

// BucketUpperNs returns bucket i's inclusive upper bound in
// nanoseconds (2^i - 1); the last bucket's bound is +Inf, reported as
// -1 here.
func BucketUpperNs(i int) int64 {
	if i >= histBuckets-1 {
		return -1
	}
	return int64(1)<<uint(i) - 1
}

// metricKind discriminates the registry's entries.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
	kindCounterFunc
	kindGaugeFunc
)

func (k metricKind) promType() string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	default:
		return "histogram"
	}
}

// metric is one registered entry.
type metric struct {
	name string
	help string
	kind metricKind
	c    *Counter
	g    *Gauge
	h    *Histogram
	fn   func() float64
}

// Registry holds named metrics and renders them in the Prometheus text
// exposition format. Registration takes the registry lock and is meant
// for package init; the returned handles are lock-free. Registering a
// name twice returns the existing handle when the kinds match (so two
// Managers in one process share the process-wide counters) and panics
// on a kind mismatch — that is a programming error, not runtime input.
type Registry struct {
	mu    sync.Mutex
	named map[string]*metric
	order []*metric
}

// NewRegistry returns an empty registry. Most code uses Default; fresh
// registries exist for tests (deterministic golden exposition) and for
// embedding.
func NewRegistry() *Registry {
	return &Registry{named: make(map[string]*metric)}
}

// Default is the process-wide registry: every subsystem's package-level
// metrics land here, and the service's GET /metrics endpoint serves it.
// Runtime gauges are pre-registered (see runtime.go).
var Default = NewRegistry()

// register inserts or returns an existing entry.
func (r *Registry) register(m *metric) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if old, ok := r.named[m.name]; ok {
		if old.kind != m.kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", m.name, m.kind.promType(), old.kind.promType()))
		}
		return old
	}
	r.named[m.name] = m
	r.order = append(r.order, m)
	return m
}

// Counter registers (or finds) a counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(&metric{name: name, help: help, kind: kindCounter, c: new(Counter)}).c
}

// Gauge registers (or finds) a gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(&metric{name: name, help: help, kind: kindGauge, g: new(Gauge)}).g
}

// Histogram registers (or finds) a log₂ latency histogram.
func (r *Registry) Histogram(name, help string) *Histogram {
	return r.register(&metric{name: name, help: help, kind: kindHistogram, h: new(Histogram)}).h
}

// GaugeFunc registers a gauge whose value is computed at scrape time
// (runtime stats). fn must be safe for concurrent use.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(&metric{name: name, help: help, kind: kindGaugeFunc, fn: fn})
}

// CounterFunc registers a counter whose value is computed at scrape
// time (monotone runtime totals, e.g. cumulative GC pause). fn must be
// safe for concurrent use and non-decreasing.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(&metric{name: name, help: help, kind: kindCounterFunc, fn: fn})
}

// formatFloat renders a sample value the way Prometheus text format
// expects: shortest representation that round-trips.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every registered metric in the Prometheus
// text exposition format (version 0.0.4), in name order. Values are
// read atomically per sample; a scrape concurrent with traffic is
// per-metric consistent, not globally consistent — the standard
// Prometheus contract.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	ms := make([]*metric, len(r.order))
	copy(ms, r.order)
	r.mu.Unlock()
	sort.Slice(ms, func(i, j int) bool { return ms[i].name < ms[j].name })
	for _, m := range ms {
		if m.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.name, m.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.name, m.kind.promType()); err != nil {
			return err
		}
		var err error
		switch m.kind {
		case kindCounter:
			_, err = fmt.Fprintf(w, "%s %d\n", m.name, m.c.Value())
		case kindGauge:
			_, err = fmt.Fprintf(w, "%s %d\n", m.name, m.g.Value())
		case kindCounterFunc, kindGaugeFunc:
			_, err = fmt.Fprintf(w, "%s %s\n", m.name, formatFloat(m.fn()))
		case kindHistogram:
			err = writeHistogram(w, m.name, m.h)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// writeHistogram renders h with cumulative le buckets in seconds. The
// bucket array is snapshotted first and the total derived from the
// snapshot, so the rendered cumulative counts and the +Inf bucket are
// self-consistent even under concurrent observation (sum/count may lag
// by in-flight observations — the standard scrape-skew contract).
func writeHistogram(w io.Writer, name string, h *Histogram) error {
	var snap [histBuckets]int64
	var total int64
	for i := range snap {
		snap[i] = h.Bucket(i)
		total += snap[i]
	}
	var cum int64
	for i := 0; i < histBuckets-1; i++ {
		cum += snap[i]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n",
			name, formatFloat(float64(BucketUpperNs(i))/1e9), cum); err != nil {
			return err
		}
		if cum == total && i >= 10 {
			// Everything observed fits below this bound; the remaining
			// finite buckets would repeat the same cumulative count, which
			// cumulative semantics make redundant. (The first ~µs
			// boundaries always render, so dashboards get a stable grid.)
			break
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, total); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum %s\n", name, formatFloat(h.Sum().Seconds())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count %d\n", name, total)
	return err
}

// Handler returns an http.Handler serving the registry in Prometheus
// text exposition format — the GET /metrics endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
