package obs

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestHistogramBucketBoundaries pins the log₂ bucketing rule at its
// edges: bucket i holds durations whose nanosecond value has bit
// length i, so every power-of-two boundary (2^i - 1 inclusive below,
// 2^i opening the next bucket) must land exactly, zero goes to bucket
// 0, negatives clamp to zero, and anything at or beyond 2^(histBuckets-2)
// ns lands in the overflow bucket.
func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		d      time.Duration
		bucket int
	}{
		{0, 0},
		{-5 * time.Second, 0}, // negative clamps to 0
		{1, 1},
		{2, 2},
		{3, 2},
		{4, 3},
		{7, 3},
		{8, 4},
		{1023, 10},
		{1024, 11},
		{time.Duration(1)<<20 - 1, 20},
		{time.Duration(1) << 20, 21},
		{time.Duration(1)<<38 - 1, 38}, // last finite bucket's top
		{time.Duration(1) << 38, histBuckets - 1}, // first overflow value
		{time.Duration(math.MaxInt64), histBuckets - 1},
	}
	for _, tc := range cases {
		var h Histogram
		h.Observe(tc.d)
		for i := 0; i < histBuckets; i++ {
			want := int64(0)
			if i == tc.bucket {
				want = 1
			}
			if got := h.Bucket(i); got != want {
				t.Errorf("Observe(%d): bucket %d = %d, want %d", tc.d, i, got, want)
			}
		}
		if h.Count() != 1 {
			t.Errorf("Observe(%d): count = %d", tc.d, h.Count())
		}
	}
}

// TestHistogramBucketUpperBounds ties the exported boundary helper to
// the bucketing rule: a value equal to BucketUpperNs(i) must land in
// bucket <= i, and value+1 in bucket i+1.
func TestHistogramBucketUpperBounds(t *testing.T) {
	for i := 1; i < histBuckets-1; i++ {
		ub := BucketUpperNs(i)
		if ub != int64(1)<<uint(i)-1 {
			t.Fatalf("BucketUpperNs(%d) = %d", i, ub)
		}
		var h Histogram
		h.Observe(time.Duration(ub))
		if got := h.Bucket(i); got != 1 {
			t.Fatalf("upper bound %d of bucket %d landed elsewhere", ub, i)
		}
	}
	if BucketUpperNs(histBuckets-1) != -1 {
		t.Fatal("overflow bucket must report -1 (=+Inf)")
	}
}

// TestHistogramSumCount checks the aggregate accumulators.
func TestHistogramSumCount(t *testing.T) {
	var h Histogram
	h.Observe(10 * time.Millisecond)
	h.Observe(30 * time.Millisecond)
	h.Since(time.Now()) // ~0, still counted
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
	if s := h.Sum(); s < 40*time.Millisecond || s > 41*time.Millisecond {
		t.Fatalf("sum = %v", s)
	}
}

// TestCounterGauge covers the scalar record paths, including the
// negative-add guard on counters.
func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	c.Add(-100) // ignored: counters are monotone
	if c.Value() != 5 {
		t.Fatalf("counter = %d", c.Value())
	}
	var g Gauge
	g.Set(7)
	g.Add(-3)
	if g.Value() != 4 {
		t.Fatalf("gauge = %d", g.Value())
	}
}

// TestRegistryDedup: same name and kind returns the same handle; a
// kind clash panics.
func TestRegistryDedup(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "")
	b := r.Counter("x_total", "other help ignored")
	if a != b {
		t.Fatal("re-registration must return the existing counter")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch must panic")
		}
	}()
	r.Gauge("x_total", "")
}

// TestHistogramExpositionCumulative checks that the rendered buckets
// are cumulative and self-consistent with +Inf and _count.
func TestHistogramExpositionCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "")
	h.Observe(1)           // bucket 1
	h.Observe(3)           // bucket 2
	h.Observe(time.Minute) // bucket 36 (6e10 ns, bitlen 36)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`lat_seconds_bucket{le="0"} 0`,
		`lat_seconds_bucket{le="1e-09"} 1`,
		`lat_seconds_bucket{le="3e-09"} 2`,
		`lat_seconds_bucket{le="+Inf"} 3`,
		`lat_seconds_count 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Cumulative counts never decrease down the bucket list.
	last := int64(-1)
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "lat_seconds_bucket") {
			continue
		}
		var n int64
		if _, err := fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%d", &n); err != nil {
			t.Fatalf("parsing %q: %v", line, err)
		}
		if n < last {
			t.Fatalf("cumulative bucket count decreased at %q", line)
		}
		last = n
	}
}

// TestConcurrentRecordAndScrape hammers every record path while
// scraping; run under -race in CI, and the final totals must be exact.
func TestConcurrentRecordAndScrape(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h_seconds", "")
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(time.Duration(i))
			}
		}()
	}
	for i := 0; i < 50; i++ {
		var buf bytes.Buffer
		if err := r.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if c.Value() != workers*perWorker {
		t.Fatalf("counter = %d", c.Value())
	}
	if g.Value() != workers*perWorker {
		t.Fatalf("gauge = %d", g.Value())
	}
	if h.Count() != workers*perWorker {
		t.Fatalf("histogram count = %d", h.Count())
	}
}

// TestTracer pins the span wire shape: one JSON object per line,
// ts/ev first, fields in sorted key order.
func TestTracer(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	tr.now = func() time.Time { return time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC) }
	tr.Emit("job.queued", F{"job": "j00001-aaaa", "chains": 4})
	tr.Emit("fetch.end", F{"node": 17, "ms": 1.5, "err": "boom"})
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	want := `{"ts":"2026-08-08T12:00:00Z","ev":"job.queued","chains":4,"job":"j00001-aaaa"}
{"ts":"2026-08-08T12:00:00Z","ev":"fetch.end","err":"boom","ms":1.5,"node":17}
`
	if buf.String() != want {
		t.Fatalf("trace output:\n%q\nwant:\n%q", buf.String(), want)
	}
}

// TestActiveTracer checks the global install/clear path.
func TestActiveTracer(t *testing.T) {
	if ActiveTracer() != nil {
		t.Fatal("tracer must default to nil")
	}
	tr := NewTracer(&bytes.Buffer{})
	SetTracer(tr)
	if ActiveTracer() != tr {
		t.Fatal("SetTracer did not install")
	}
	SetTracer(nil)
	if ActiveTracer() != nil {
		t.Fatal("SetTracer(nil) did not clear")
	}
}

// TestRuntimeMetricsRegistered: the Default registry exposes the
// runtime gauges with live values.
func TestRuntimeMetricsRegistered(t *testing.T) {
	var buf bytes.Buffer
	if err := Default.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range []string{
		"histwalk_runtime_goroutines",
		"histwalk_runtime_heap_alloc_bytes",
		"histwalk_runtime_gc_pause_seconds_total",
	} {
		if !strings.Contains(out, "# TYPE "+name) {
			t.Errorf("Default registry missing %s", name)
		}
	}
}
