package obs

// Runtime gauges: goroutine count, heap residency and GC pause totals,
// computed at scrape time. runtime.ReadMemStats stops the world
// briefly, so one snapshot is shared across the memstats-backed gauges
// and cached for a short window — a scrape costs at most one
// stop-the-world read regardless of how many gauges it renders.

import (
	"runtime"
	"sync"
	"time"
)

// memCache is the shared, briefly-cached MemStats snapshot.
var memCache struct {
	mu   sync.Mutex
	at   time.Time
	stat runtime.MemStats
}

// memStats returns a MemStats snapshot at most maxAge old.
func memStats(maxAge time.Duration) runtime.MemStats {
	memCache.mu.Lock()
	defer memCache.mu.Unlock()
	if now := time.Now(); memCache.at.IsZero() || now.Sub(memCache.at) > maxAge {
		runtime.ReadMemStats(&memCache.stat)
		memCache.at = now
	}
	return memCache.stat
}

// RegisterRuntimeMetrics registers the Go runtime gauges on r. Default
// gets them automatically; fresh registries (tests, embedders) opt in.
func RegisterRuntimeMetrics(r *Registry) {
	const maxAge = time.Second
	r.GaugeFunc("histwalk_runtime_goroutines",
		"Current number of goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("histwalk_runtime_heap_alloc_bytes",
		"Bytes of allocated heap objects (runtime.MemStats.HeapAlloc).",
		func() float64 { return float64(memStats(maxAge).HeapAlloc) })
	r.GaugeFunc("histwalk_runtime_heap_sys_bytes",
		"Bytes of heap memory obtained from the OS (runtime.MemStats.HeapSys).",
		func() float64 { return float64(memStats(maxAge).HeapSys) })
	r.CounterFunc("histwalk_runtime_gc_total",
		"Completed GC cycles (runtime.MemStats.NumGC).",
		func() float64 { return float64(memStats(maxAge).NumGC) })
	r.CounterFunc("histwalk_runtime_gc_pause_seconds_total",
		"Cumulative stop-the-world GC pause (runtime.MemStats.PauseTotalNs).",
		func() float64 { return float64(memStats(maxAge).PauseTotalNs) / 1e9 })
}

func init() { RegisterRuntimeMetrics(Default) }
