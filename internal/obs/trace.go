package obs

// The structured trace layer: JSONL spans for job and chain lifecycles
// (queued → running → terminal, chain start / step-milestone / finish)
// and pipeline fetch begin/end events. One line per span, first-field
// timestamp, deterministic key order (ts, ev, then sorted field names),
// so traces diff cleanly and stream into jq/duckdb without a schema.
//
// Tracing is opt-in (histwalkd/sampler -trace <file>) and process
// global: instrumented call sites do
//
//	if tr := obs.ActiveTracer(); tr != nil {
//	    tr.Emit("chain.finish", obs.F{"chain": c, "steps": n})
//	}
//
// so the disabled path is one atomic pointer load and a branch — no
// field map is ever built. An enabled tracer allocates per span; that
// is fine, because tracing never sits inside the walk's zero-alloc
// step contract (spans mark lifecycle edges and network fetches, not
// transitions) and, like the metrics layer, consumes no RNG and feeds
// nothing back into walker decisions — trajectories are bit-identical
// with tracing on, pinned by the session parity test.

import (
	"bufio"
	"encoding/json"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// F is one span's fields: JSON-encodable values keyed by short names.
type F map[string]any

// Tracer appends JSONL spans to a writer. It is safe for concurrent
// use; spans from different goroutines serialize on an internal mutex
// (trace volume is lifecycle-scale, not step-scale, so the lock is not
// contended on any hot path).
type Tracer struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	c   io.Closer // non-nil when Close should close the sink
	now func() time.Time
}

// NewTracer returns a tracer writing spans to w. If w is also an
// io.Closer, Close closes it after the final flush.
func NewTracer(w io.Writer) *Tracer {
	t := &Tracer{bw: bufio.NewWriter(w), now: time.Now}
	if c, ok := w.(io.Closer); ok {
		t.c = c
	}
	return t
}

// Emit appends one span: {"ts":..., "ev":..., <fields in sorted key
// order>}. Unencodable field values render as their error string
// rather than dropping the span.
func (t *Tracer) Emit(ev string, fields F) {
	keys := make([]string, 0, len(fields))
	for k := range fields {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	t.mu.Lock()
	defer t.mu.Unlock()
	t.bw.WriteString(`{"ts":`)
	t.writeJSON(t.now().UTC().Format(time.RFC3339Nano))
	t.bw.WriteString(`,"ev":`)
	t.writeJSON(ev)
	for _, k := range keys {
		t.bw.WriteByte(',')
		t.writeJSON(k)
		t.bw.WriteByte(':')
		t.writeJSON(fields[k])
	}
	t.bw.WriteString("}\n")
}

// writeJSON encodes v onto the buffered writer. Callers hold t.mu.
func (t *Tracer) writeJSON(v any) {
	b, err := json.Marshal(v)
	if err != nil {
		b, _ = json.Marshal(err.Error())
	}
	t.bw.Write(b)
}

// Flush pushes buffered spans to the sink.
func (t *Tracer) Flush() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.bw.Flush()
}

// Close flushes and, when the sink is a Closer, closes it.
func (t *Tracer) Close() error {
	if err := t.Flush(); err != nil {
		if t.c != nil {
			t.c.Close()
		}
		return err
	}
	if t.c != nil {
		return t.c.Close()
	}
	return nil
}

// active is the process-wide tracer; nil means tracing is off.
var active atomic.Pointer[Tracer]

// SetTracer installs (or, with nil, removes) the process-wide tracer.
// It does not close the previous tracer — the installer owns both.
func SetTracer(t *Tracer) { active.Store(t) }

// ActiveTracer returns the process-wide tracer, or nil when tracing is
// off. The nil check at the call site is the entire disabled-path cost.
func ActiveTracer() *Tracer { return active.Load() }
