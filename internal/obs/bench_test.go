package obs

import (
	"testing"
	"time"
)

// BenchmarkObsRecord measures the three record paths the rest of the
// stack calls from hot code. CI gates these at 0 allocs/op via
// cmd/benchgate against BENCH_obs.json — the contract that lets
// instrumentation sit on the access hot path without breaking the
// walk's zero-alloc step budget.
func BenchmarkObsRecord(b *testing.B) {
	b.Run("counter", func(b *testing.B) {
		var c Counter
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
	b.Run("gauge", func(b *testing.B) {
		var g Gauge
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g.Set(int64(i))
		}
	})
	b.Run("histogram", func(b *testing.B) {
		var h Histogram
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.Observe(time.Duration(i))
		}
	})
}
