package histwalk

// Re-exports of the analysis extensions: exact Markov-chain analysis
// (internal/markov), MCMC convergence diagnostics
// (internal/diagnostics), parallel walker ensembles (internal/ensemble)
// and the frontier-sampling baselines.

import (
	"histwalk/internal/core"
	"histwalk/internal/diagnostics"
	"histwalk/internal/ensemble"
	"histwalk/internal/experiment"
	"histwalk/internal/linalg"
	"histwalk/internal/markov"
)

// Exact Markov-chain analysis types.
type (
	// Matrix is a dense row-major matrix (exact-analysis kernel).
	Matrix = linalg.Matrix
	// EdgeState is one directed-edge state of the NB-SRW chain.
	EdgeState = markov.EdgeState
)

// Exact Markov-chain analysis functions (small graphs only: the
// matrices are dense).
var (
	// NewMatrix returns a zero rows×cols dense matrix.
	NewMatrix = linalg.NewMatrix
	// SRWMatrix returns the SRW transition matrix of a graph.
	SRWMatrix = markov.SRWMatrix
	// MHRWMatrix returns the MHRW transition matrix of a graph.
	MHRWMatrix = markov.MHRWMatrix
	// NBSRWEdgeChain returns NB-SRW's directed-edge transition matrix.
	NBSRWEdgeChain = markov.NBSRWEdgeChain
	// NodeMarginal folds an edge-state distribution to head nodes.
	NodeMarginal = markov.NodeMarginal
	// ExactStationary solves πP = π exactly.
	ExactStationary = markov.ExactStationary
	// AsymptoticVariance computes Definition 3's variance exactly via
	// the fundamental matrix.
	AsymptoticVariance = markov.AsymptoticVariance
	// SpectralGap returns 1−|λ₂| of a reversible chain.
	SpectralGap = markov.SpectralGap
	// MixingTimeBound bounds the ε-mixing time from the gap.
	MixingTimeBound = markov.MixingTimeBound
	// DistributionAfter advances a start distribution t steps.
	DistributionAfter = markov.DistributionAfter
)

// Convergence diagnostics for walk sample paths.
var (
	// Geweke returns the Geweke burn-in z-score of a chain.
	Geweke = diagnostics.Geweke
	// GelmanRubin returns R̂ across parallel chains.
	GelmanRubin = diagnostics.GelmanRubin
	// EffectiveSampleSize estimates the worth of an autocorrelated
	// chain in independent samples.
	EffectiveSampleSize = diagnostics.EffectiveSampleSize
	// AutoBurnIn picks a burn-in length via repeated Geweke tests.
	AutoBurnIn = diagnostics.AutoBurnIn
	// Autocorrelation returns the lag-k sample autocorrelation.
	Autocorrelation = diagnostics.Autocorrelation
)

// Parallel walker ensembles.
type (
	// EnsembleConfig parameterizes a parallel sampling run.
	//
	// Deprecated: use Spec with Chains > 1 and Run; the session API
	// additionally reports confidence intervals and per-chain query
	// accounting. EnsembleConfig is kept as a compatibility shim.
	EnsembleConfig = ensemble.Config
	// EnsembleResult is the merged outcome of a parallel run.
	//
	// Deprecated: use Result from Run.
	EnsembleResult = ensemble.Result
)

// RunEnsemble executes independent walkers concurrently and pools their
// estimates, reporting Gelman–Rubin R̂ across the chains.
//
// Deprecated: use Run with Spec.Chains > 1 (RunEnsemble is now a thin
// wrapper over it, preserving the legacy seed stream).
var RunEnsemble = ensemble.Run

// Frontier-sampling baselines (Ribeiro & Towsley, the paper's [17]).
type Frontier = core.Frontier

var (
	// NewFrontier returns an m-walker frontier sampler.
	NewFrontier = core.NewFrontier
	// NewFrontierCNRW is NewFrontier with per-walker CNRW circulation.
	NewFrontierCNRW = core.NewFrontierCNRW
	// FrontierFactory builds frontier samplers for experiments.
	FrontierFactory = core.FrontierFactory
	// FrontierCNRWFactory builds circulated frontier samplers.
	FrontierCNRWFactory = core.FrontierCNRWFactory
)

// Theorem 2/4 exact-reference validation.
type (
	// Theorem2Config parameterizes the exact-variance validation.
	Theorem2Config = experiment.Theorem2Config
	// Theorem2Row is one topology's results.
	Theorem2Row = experiment.Theorem2Row
)

var (
	// Theorem2Results runs the exact-vs-empirical variance validation.
	Theorem2Results = experiment.Theorem2Results
	// Theorem2Table renders the validation as a table.
	Theorem2Table = experiment.Theorem2Table
)
