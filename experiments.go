package histwalk

// Re-exports of the experiment harness and the dataset substitutes, so
// downstream users can regenerate the paper's evaluation or run the
// same protocols on their own graphs.

import (
	"histwalk/internal/dataset"
	"histwalk/internal/experiment"
)

// Experiment harness types.
type (
	// Figure is the data behind one plot (labeled series over an axis).
	Figure = experiment.Figure
	// Series is one labeled curve of a Figure.
	Series = experiment.Series
	// Table is a generic rendered text table.
	Table = experiment.Table
	// EstimationConfig parameterizes a relative-error-vs-budget figure.
	EstimationConfig = experiment.EstimationConfig
	// DistanceConfig parameterizes KL/ℓ2/error-vs-budget figures.
	DistanceConfig = experiment.DistanceConfig
	// DistanceResult bundles the KL, ℓ2 and error figures.
	DistanceResult = experiment.DistanceResult
	// StationaryConfig parameterizes the Figure 8 experiment.
	StationaryConfig = experiment.StationaryConfig
	// SizeSweepConfig parameterizes the Figure 11 graph-size sweep.
	SizeSweepConfig = experiment.SizeSweepConfig
	// EscapeConfig parameterizes the Theorem 3 barbell validation.
	EscapeConfig = experiment.EscapeConfig
	// EscapeResult reports barbell bridge-crossing probabilities.
	EscapeResult = experiment.EscapeResult
	// CostModel selects the budget metering of experiment runners.
	CostModel = experiment.CostModel
	// PaperConfig scales the full paper reproduction.
	PaperConfig = experiment.PaperConfig
)

// Budget metering models.
const (
	// CostUnique counts unique neighborhood queries (the paper's §2.3
	// definition; repeats served from the crawler cache are free).
	CostUnique = experiment.CostUnique
	// CostSteps charges every transition (used by the paper's
	// small-graph figures whose budgets exceed the node count).
	CostSteps = experiment.CostSteps
)

// Experiment runners.
var (
	// EstimationFigure measures estimation error against query cost.
	EstimationFigure = experiment.EstimationFigure
	// DistanceFigures measures KL, ℓ2 and error against query cost.
	DistanceFigures = experiment.DistanceFigures
	// StationaryFigure compares empirical visit distributions with π.
	StationaryFigure = experiment.StationaryFigure
	// StationaryDeviation summarizes a StationaryFigure series as its
	// ℓ2 distance from the theoretical distribution.
	StationaryDeviation = experiment.StationaryDeviation
	// SizeSweepFigures sweeps bias measures over graph sizes.
	SizeSweepFigures = experiment.SizeSweepFigures
	// BarbellEscape validates Theorem 3 empirically.
	BarbellEscape = experiment.BarbellEscape
	// DatasetTable computes Table 1 for a set of graphs.
	DatasetTable = experiment.DatasetTable
	// DesignFor maps a walker name to its estimator design.
	DesignFor = experiment.DesignFor
	// QuickConfig returns the bench-scale reproduction configuration.
	QuickConfig = experiment.QuickConfig
	// FullConfig returns the EXPERIMENTS.md reproduction configuration.
	FullConfig = experiment.FullConfig
	// Table1 computes the dataset-summary table at a given scale.
	Table1 = experiment.Table1
	// Figure6 runs the Google Plus estimation experiment.
	Figure6 = experiment.Figure6
	// Figure7 runs the Facebook bias experiment.
	Figure7 = experiment.Figure7
	// Figure7d runs the YouTube estimation experiment.
	Figure7d = experiment.Figure7d
	// Figure8 runs the sampling-distribution experiment.
	Figure8 = experiment.Figure8
	// Figure9 runs the Yelp grouping-strategy experiment.
	Figure9 = experiment.Figure9
	// Figure10 runs the clustered-graph bias experiment.
	Figure10 = experiment.Figure10
	// Figure10Unique is Figure 10 under the unique-query cost model.
	Figure10Unique = experiment.Figure10Unique
	// Figure11 runs the barbell size sweep.
	Figure11 = experiment.Figure11
	// Theorem3 validates the barbell escape bound.
	Theorem3 = experiment.Theorem3
	// EscapeTable renders an EscapeResult as a table.
	EscapeTable = experiment.EscapeTable
	// AblationCirculationTable runs the edge- vs node-keyed circulation
	// ablation.
	AblationCirculationTable = experiment.AblationCirculationTable
	// AblationGroupCountFigure sweeps GNRW's stratum count.
	AblationGroupCountFigure = experiment.AblationGroupCountFigure
	// AblationFrontierFigure compares frontier sampling with single
	// walks.
	AblationFrontierFigure = experiment.AblationFrontierFigure
)

// AblationCirculationConfig parameterizes the circulation ablation.
type AblationCirculationConfig = experiment.AblationCirculationConfig

// Dataset substitutes for the paper's evaluation datasets (see
// DESIGN.md §4 for the substitution rationale).
var (
	// FacebookEgo1 is the first Facebook ego-network stand-in.
	FacebookEgo1 = dataset.FacebookEgo1
	// FacebookEgo2 is the Table 1 "Facebook" stand-in (775 nodes).
	FacebookEgo2 = dataset.FacebookEgo2
	// GooglePlus is the scaled Google Plus stand-in.
	GooglePlus = dataset.GooglePlus
	// GooglePlusN is GooglePlus at an explicit node count.
	GooglePlusN = dataset.GooglePlusN
	// Yelp is the scaled Yelp stand-in with the reviews_count
	// attribute.
	Yelp = dataset.Yelp
	// YelpN is Yelp at an explicit node count.
	YelpN = dataset.YelpN
	// Youtube is the scaled YouTube stand-in.
	Youtube = dataset.Youtube
	// YoutubeN is Youtube at an explicit node count.
	YoutubeN = dataset.YoutubeN
	// ClusteredGraph is the paper's 10/30/50 clustered-cliques graph.
	ClusteredGraph = dataset.ClusteredGraph
	// BarbellGraph is the paper's barbell dataset at a given node
	// count.
	BarbellGraph = dataset.BarbellGraph
	// DatasetByName constructs a dataset from its paper name.
	DatasetByName = dataset.ByName
	// DatasetNames lists the names accepted by DatasetByName.
	DatasetNames = dataset.Names
	// AllDatasets returns the full Table 1 family.
	AllDatasets = dataset.All
)

// Attribute names attached by the dataset substitutes.
const (
	// AttrReviews is the Yelp-like "reviews_count" measure attribute.
	AttrReviews = dataset.AttrReviews
	// AttrCommunity is the planted community label.
	AttrCommunity = dataset.AttrCommunity
	// AttrAge is a homophily-free uniform control attribute.
	AttrAge = dataset.AttrAge
)
