// Avgdegree compares all five samplers of the paper's Figure 6 on the
// Google Plus stand-in: for each query budget it reports the mean
// relative error of the average-degree estimate over repeated trials,
// reproducing the headline result that the history-aware walks (CNRW,
// GNRW) outperform SRW/NB-SRW while MHRW trails far behind.
//
// Run with:
//
//	go run ./examples/avgdegree [-n 6000] [-trials 150]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"histwalk"
)

func main() {
	n := flag.Int("n", 6000, "node count of the Google Plus stand-in")
	trials := flag.Int("trials", 150, "walks per algorithm")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	g := histwalk.GooglePlusN(*n, *seed)
	fmt.Printf("Google Plus stand-in: %d nodes, %d edges, avg degree %.1f, clustering %.2f\n\n",
		g.NumNodes(), g.NumEdges(), g.AvgDegree(), g.AvgClustering())

	fig, err := histwalk.EstimationFigure(histwalk.EstimationConfig{
		ID:    "fig6",
		Title: "estimation of average degree (lower is better)",
		Graph: g,
		Attr:  "degree",
		Factories: []histwalk.Factory{
			histwalk.MHRWFactory(),
			histwalk.SRWFactory(),
			histwalk.NBSRWFactory(),
			histwalk.CNRWFactory(),
			histwalk.GNRWFactory(histwalk.DegreeGrouper{M: 5}),
		},
		Budgets: []int{200, 400, 600, 800, 1000},
		Trials:  *trials,
		Seed:    *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := fig.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	srw, _ := fig.FinalValue("SRW")
	cnrw, _ := fig.FinalValue("CNRW")
	gnrw, _ := fig.FinalValue("GNRW(By-Degree)")
	mhrw, _ := fig.FinalValue("MHRW")
	fmt.Printf("\nat budget 1000: SRW %.4f, CNRW %.4f, GNRW %.4f, MHRW %.4f\n", srw, cnrw, gnrw, mhrw)
	if cnrw <= srw && gnrw <= srw {
		fmt.Println("history-aware walks matched or beat SRW — the paper's Figure 6 ordering")
	}

	// The figure averages many trials; a practitioner runs one session.
	// The same budget as the figure's last point, as a declarative spec
	// with four chains and a pooled confidence interval.
	res, err := histwalk.Run(context.Background(), histwalk.Spec{
		Graph:  g,
		Walker: histwalk.CNRWFactory(),
		Budget: 1000,
		Chains: 4,
		Seed:   *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	est := res.Estimates[0]
	fmt.Printf("\none practical CNRW session (4 chains × 1000 queries): avg degree %.2f", est.Point)
	if est.HasInterval {
		fmt.Printf(" ∈ [%.2f, %.2f] at 95%%", est.Interval.Low, est.Interval.High)
	}
	fmt.Printf(" (truth %.2f)\n", g.AvgDegree())

	// The same fleet over one shared crawl cache: trajectories, budgets
	// and the estimate are bit-identical, but nodes a sibling chain
	// already fetched are free, so the network is paid strictly less.
	shared, err := histwalk.Run(context.Background(), histwalk.Spec{
		Graph:  g,
		Walker: histwalk.CNRWFactory(),
		Budget: 1000,
		Chains: 4,
		Cache:  histwalk.CacheShared,
		Seed:   *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	if shared.Estimates[0].Point != est.Point {
		log.Fatalf("shared-cache estimate %v diverged from isolated %v", shared.Estimates[0].Point, est.Point)
	}
	fmt.Printf("same fleet, shared cache: identical estimate %.2f, network cost %d vs %d isolated (%.1f%% saved by %d cross-chain hits)\n",
		shared.Estimates[0].Point, shared.GlobalQueries, shared.TotalQueries,
		100*shared.CrossChainHitRate, shared.CrossChainHits)
}
