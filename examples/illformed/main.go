// Illformed runs the paper's adversarial-topology experiments (Figures
// 10 and 11 plus Theorem 3): graphs made of dense cliques joined by
// single bridges, the worst case for random-walk burn-in. It shows how
// the history-aware walks reduce sampling bias on these traps and
// validates Theorem 3's escape-probability bound on the barbell graph.
//
// Run with:
//
//	go run ./examples/illformed [-trials 400]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"histwalk"
)

func main() {
	trials := flag.Int("trials", 400, "walks per algorithm")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	// --- Figure 10: the clustered graph (cliques of 10/30/50) ---
	g := histwalk.ClusteredGraph()
	fmt.Printf("clustered graph: %d nodes, %d edges, clustering %.2f\n\n",
		g.NumNodes(), g.NumEdges(), g.AvgClustering())
	res, err := histwalk.DistanceFigures(histwalk.DistanceConfig{
		IDPrefix: "fig10", Title: "clustered graph",
		Graph: g, Attr: "degree",
		Factories: []histwalk.Factory{
			histwalk.SRWFactory(),
			histwalk.NBSRWFactory(),
			histwalk.CNRWFactory(),
			histwalk.GNRWFactory(histwalk.DegreeGrouper{M: 5}),
		},
		Budgets: []int{20, 60, 100, 140},
		Trials:  *trials,
		Seed:    *seed,
		Cost:    histwalk.CostSteps,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := res.KL.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	if err := res.Err.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// --- Figure 11: barbell size sweep ---
	sweep, err := histwalk.SizeSweepFigures(histwalk.SizeSweepConfig{
		IDPrefix: "fig11", Title: "barbell graphs",
		Sizes:     []int{20, 32, 44, 56},
		Make:      func(size int) *histwalk.Graph { return histwalk.BarbellGraph(size) },
		BudgetFor: func(int) int { return 100 },
		Cost:      histwalk.CostSteps,
		Factories: []histwalk.Factory{
			histwalk.SRWFactory(),
			histwalk.CNRWFactory(),
			histwalk.GNRWFactory(histwalk.DegreeGrouper{M: 5}),
		},
		Attr:   "degree",
		Trials: *trials / 2,
		Seed:   *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := sweep.KL.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// --- Theorem 3: escape probability at the barbell bridge ---
	esc, err := histwalk.BarbellEscape(histwalk.EscapeConfig{
		CliqueSize: 20, Steps: 1500000, Episodes: 200, Seed: *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nTheorem 3 on Barbell(|G1|=%d):\n", esc.CliqueSize)
	fmt.Printf("  P_SRW  = %.5f (theory 1/%d = %.5f)\n", esc.PSRW, esc.CliqueSize, 1.0/float64(esc.CliqueSize))
	fmt.Printf("  P_CNRW = %.5f\n", esc.PCNRW)
	fmt.Printf("  ratio %.2f vs bound %.2f → bound satisfied: %v\n",
		esc.Ratio, esc.Bound, esc.Ratio > esc.Bound)

	// --- trap detection in practice: multi-chain R̂ on the clustered
	// graph. Short chains starting in different cliques disagree, and
	// the Gelman–Rubin diagnostic in the session Result flags it.
	fmt.Println("\nshort multi-chain runs on the clustered graph (R̂ > 1.1 ⇒ chains still trapped):")
	for _, f := range []histwalk.Factory{histwalk.SRWFactory(), histwalk.CNRWFactory()} {
		run, err := histwalk.Run(context.Background(), histwalk.Spec{
			Graph:  g,
			Walker: f,
			Budget: 120,
			Cost:   histwalk.CostSteps,
			Chains: 6,
			Seed:   *seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-5s R̂ = %.3f\n", f.Name, run.Estimates[0].GelmanRubin)
	}
}
