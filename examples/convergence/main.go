// Convergence demonstrates the burn-in tooling around the samplers: it
// runs a fleet of parallel walkers over a trap-heavy network, checks
// Gelman–Rubin R̂ across the chains and the Geweke score within one
// chain, picks a burn-in automatically, and compares the exact spectral
// gap (and hence mixing-time bound) of the underlying SRW chain with
// what the diagnostics report — connecting the paper's "burn-in is the
// bottleneck" motivation to measurable quantities.
//
// Run with:
//
//	go run ./examples/convergence
package main

import (
	"fmt"
	"log"
	"math/rand"

	"histwalk"
)

func main() {
	// A small trap-heavy network where exact analysis is feasible.
	g := histwalk.ClusteredCliques([]int{8, 12, 16})
	fmt.Printf("graph: %d nodes, %d edges (three chained cliques)\n\n", g.NumNodes(), g.NumEdges())

	// --- exact mixing analysis of the SRW baseline ---
	p := histwalk.SRWMatrix(g)
	pi, err := histwalk.ExactStationary(p)
	if err != nil {
		log.Fatal(err)
	}
	gap, err := histwalk.SpectralGap(p, pi)
	if err != nil {
		log.Fatal(err)
	}
	piMin := pi[0]
	for _, x := range pi {
		if x < piMin {
			piMin = x
		}
	}
	fmt.Printf("exact SRW spectral gap: %.4f → ε=0.01 mixing-time bound ≈ %.0f steps\n",
		gap, histwalk.MixingTimeBound(gap, piMin, 0.01))

	// Exact asymptotic variance of the slowest-mixing indicator.
	f := make([]float64, g.NumNodes())
	for v := 20; v < 36; v++ {
		f[v] = 1 // membership in the largest clique
	}
	exactVar, err := histwalk.AsymptoticVariance(p, pi, f)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact SRW asymptotic variance of the clique indicator: %.3f\n\n", exactVar)

	// --- one long CNRW chain: Geweke, ESS, automatic burn-in ---
	rng := rand.New(rand.NewSource(1))
	sim := histwalk.NewSimulator(g)
	w := histwalk.NewCNRW(sim, 0, rng)
	series := make([]float64, 40000)
	for i := range series {
		v, err := w.Step()
		if err != nil {
			log.Fatal(err)
		}
		series[i] = f[v]
	}
	z, err := histwalk.Geweke(series, 0.1, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	ess, err := histwalk.EffectiveSampleSize(series)
	if err != nil {
		log.Fatal(err)
	}
	burn, err := histwalk.AutoBurnIn(series, 2)
	if err != nil {
		log.Fatal(err)
	}
	r1, _ := histwalk.Autocorrelation(series, 1)
	fmt.Printf("CNRW chain of %d steps: Geweke z = %+.2f, lag-1 autocorr = %.3f\n", len(series), z, r1)
	fmt.Printf("effective sample size ≈ %.0f (%.1f%% of nominal), auto burn-in = %d steps\n\n",
		ess, 100*ess/float64(len(series)), burn)

	// --- parallel ensemble with R̂ certification ---
	res, err := histwalk.RunEnsemble(histwalk.EnsembleConfig{
		Graph:          g,
		Factory:        histwalk.CNRWFactory(),
		Design:         histwalk.DegreeProportional,
		Attr:           "degree",
		Chains:         6,
		BudgetPerChain: 30,
		Seed:           42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ensemble of 6 CNRW chains (30 unique queries each):\n")
	fmt.Printf("  pooled avg-degree estimate %.2f (truth %.2f, error %.1f%%)\n",
		res.Estimate, g.AvgDegree(), 100*histwalk.RelativeError(res.Estimate, g.AvgDegree()))
	fmt.Printf("  Gelman–Rubin R̂ = %.3f (%s)\n", res.GelmanRubin, verdict(res.GelmanRubin))
	fmt.Printf("  total spend: %d unique queries, %d transitions\n", res.TotalQueries, res.TotalSteps)
}

func verdict(r float64) string {
	if r == 0 {
		return "not computable"
	}
	if r < 1.1 {
		return "chains mixed"
	}
	return "needs longer burn-in"
}
