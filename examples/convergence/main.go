// Convergence demonstrates the burn-in tooling around the samplers: it
// runs a fleet of parallel walkers over a trap-heavy network, checks
// Gelman–Rubin R̂ across the chains and the Geweke score within one
// chain, picks a burn-in automatically, and compares the exact spectral
// gap (and hence mixing-time bound) of the underlying SRW chain with
// what the diagnostics report — connecting the paper's "burn-in is the
// bottleneck" motivation to measurable quantities.
//
// Run with:
//
//	go run ./examples/convergence
package main

import (
	"context"
	"fmt"
	"log"

	"histwalk"
)

func main() {
	// A small trap-heavy network where exact analysis is feasible.
	g := histwalk.ClusteredCliques([]int{8, 12, 16})
	fmt.Printf("graph: %d nodes, %d edges (three chained cliques)\n\n", g.NumNodes(), g.NumEdges())

	// --- exact mixing analysis of the SRW baseline ---
	p := histwalk.SRWMatrix(g)
	pi, err := histwalk.ExactStationary(p)
	if err != nil {
		log.Fatal(err)
	}
	gap, err := histwalk.SpectralGap(p, pi)
	if err != nil {
		log.Fatal(err)
	}
	piMin := pi[0]
	for _, x := range pi {
		if x < piMin {
			piMin = x
		}
	}
	fmt.Printf("exact SRW spectral gap: %.4f → ε=0.01 mixing-time bound ≈ %.0f steps\n",
		gap, histwalk.MixingTimeBound(gap, piMin, 0.01))

	// Exact asymptotic variance of the slowest-mixing indicator.
	f := make([]float64, g.NumNodes())
	for v := 20; v < 36; v++ {
		f[v] = 1 // membership in the largest clique
	}
	exactVar, err := histwalk.AsymptoticVariance(p, pi, f)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact SRW asymptotic variance of the clique indicator: %.3f\n\n", exactVar)

	// --- one long CNRW chain: Geweke, ESS, automatic burn-in ---
	// A Session advances the spec's chain one transition at a time, so
	// online consumers can derive their own series from the visited
	// nodes — here the indicator of the largest clique.
	s, err := histwalk.NewSession(histwalk.Spec{
		Graph:  g,
		Walker: histwalk.CNRWFactory(),
		Budget: 40000,
		Cost:   histwalk.CostSteps, // meter transitions: the walk revisits the cached graph
		Seed:   1,
	})
	if err != nil {
		log.Fatal(err)
	}
	series := make([]float64, 0, 40000)
	for {
		u, ok, err := s.Next()
		if err != nil {
			log.Fatal(err)
		}
		if !ok {
			break
		}
		series = append(series, f[u.Node])
	}
	z, err := histwalk.Geweke(series, 0.1, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	ess, err := histwalk.EffectiveSampleSize(series)
	if err != nil {
		log.Fatal(err)
	}
	burn, err := histwalk.AutoBurnIn(series, 2)
	if err != nil {
		log.Fatal(err)
	}
	r1, _ := histwalk.Autocorrelation(series, 1)
	fmt.Printf("CNRW chain of %d steps: Geweke z = %+.2f, lag-1 autocorr = %.3f\n", len(series), z, r1)
	fmt.Printf("effective sample size ≈ %.0f (%.1f%% of nominal), auto burn-in = %d steps\n\n",
		ess, 100*ess/float64(len(series)), burn)

	// --- parallel multi-chain run with R̂ certification ---
	res, err := histwalk.Run(context.Background(), histwalk.Spec{
		Graph:  g,
		Walker: histwalk.CNRWFactory(),
		Budget: 30,
		Chains: 6,
		Seed:   42,
	})
	if err != nil {
		log.Fatal(err)
	}
	est := res.Estimates[0]
	fmt.Printf("run of 6 CNRW chains (30 unique queries each):\n")
	fmt.Printf("  pooled avg-degree estimate %.2f (truth %.2f, error %.1f%%)\n",
		est.Point, g.AvgDegree(), 100*histwalk.RelativeError(est.Point, g.AvgDegree()))
	fmt.Printf("  Gelman–Rubin R̂ = %.3f (%s)\n", est.GelmanRubin, verdict(est.GelmanRubin))
	fmt.Printf("  total spend: %d unique queries, %d transitions\n", res.TotalQueries, res.TotalSteps)
}

func verdict(r float64) string {
	if r == 0 {
		return "not computable"
	}
	if r < 1.1 {
		return "chains mixed"
	}
	return "needs longer burn-in"
}
