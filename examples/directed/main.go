// Directed demonstrates the §2.1 access-model casting: real OSNs like
// Twitter expose *directed* follower edges, and the paper casts them to
// the undirected model before walking — for its Google Plus and Yelp
// crawls by keeping only mutual (reciprocated) edges, which guarantees
// every undirected transition is realizable through the original
// directed interface.
//
// The example builds a directed network with partial reciprocity, casts
// it both ways (mutual vs either), compares the resulting topologies,
// and runs CNRW over the mutual cast to estimate the average mutual
// degree.
//
// Run with:
//
//	go run ./examples/directed
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"histwalk"
)

func main() {
	// A directed network: communities where in-community follows are
	// often reciprocated, plus one-way "celebrity" follows.
	rng := rand.New(rand.NewSource(3))
	const n = 2000
	b := histwalk.NewDigraphBuilder(n)
	// community follows (reciprocated with probability 0.7)
	for v := 0; v < n; v++ {
		comm := v / 50
		for i := 0; i < 8; i++ {
			w := comm*50 + rng.Intn(50)
			if w == v {
				continue
			}
			b.AddArc(histwalk.Node(v), histwalk.Node(w))
			if rng.Float64() < 0.7 {
				b.AddArc(histwalk.Node(w), histwalk.Node(v))
			}
		}
		// one-way celebrity follow
		b.AddArc(histwalk.Node(v), histwalk.Node(rng.Intn(20)))
		// occasional mutual friendship across communities (keeps the
		// mutual cast connected, as in real social graphs)
		if rng.Float64() < 0.3 {
			w := rng.Intn(n)
			if w != v {
				b.AddArc(histwalk.Node(v), histwalk.Node(w))
				b.AddArc(histwalk.Node(w), histwalk.Node(v))
			}
		}
	}
	d := b.Build()
	d.SetName("follows")
	fmt.Printf("directed graph: %d nodes, %d arcs, reciprocity %.2f\n",
		d.NumNodes(), d.NumArcs(), d.Reciprocity())

	mutual := d.Mutual().LargestComponent()
	either := d.Either().LargestComponent()
	fmt.Printf("mutual cast:  %d nodes, %d edges (walkable via the directed API)\n",
		mutual.NumNodes(), mutual.NumEdges())
	fmt.Printf("either cast:  %d nodes, %d edges (needs reverse-edge verification)\n\n",
		either.NumNodes(), either.NumEdges())

	// Walk the mutual cast with CNRW under a query budget: the whole
	// run is one declarative spec executed by histwalk.Run.
	res, err := histwalk.Run(context.Background(), histwalk.Spec{
		Graph:  mutual,
		Walker: histwalk.CNRWFactory(),
		Budget: 400,
		Seed:   3,
	})
	if err != nil {
		log.Fatal(err)
	}
	est := res.Estimates[0]
	c := res.Chains[0]
	fmt.Printf("CNRW over the mutual cast: %d steps, %d unique queries (%d cache hits)\n",
		c.Steps, c.Queries, c.Requests-c.Queries)
	fmt.Printf("estimated avg mutual degree %.2f (truth %.2f, error %.1f%%)\n",
		est.Point, mutual.AvgDegree(), 100*histwalk.RelativeError(est.Point, mutual.AvgDegree()))
}
