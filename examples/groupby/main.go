// Groupby demonstrates GNRW's grouping strategies on the Yelp stand-in
// (the paper's Figure 9): stratifying the walk by the attribute you
// intend to aggregate gives the most accurate estimates, because the
// walk alternates across attribute strata instead of lingering inside
// one homophilous community.
//
// The example estimates two aggregates — average degree and average
// reviews count — with SRW and three GNRW grouping strategies, and
// prints which strategy wins for which aggregate.
//
// Run with:
//
//	go run ./examples/groupby [-n 6000] [-trials 200]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"histwalk"
)

func main() {
	n := flag.Int("n", 6000, "node count of the Yelp stand-in")
	trials := flag.Int("trials", 200, "walks per algorithm")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	g := histwalk.YelpN(*n, *seed)
	reviewsTruth, _ := g.MeanAttr(histwalk.AttrReviews)
	fmt.Printf("Yelp stand-in: %d nodes, %d edges, avg degree %.1f, avg reviews %.1f\n\n",
		g.NumNodes(), g.NumEdges(), g.AvgDegree(), reviewsTruth)

	factories := []histwalk.Factory{
		histwalk.SRWFactory(),
		histwalk.GNRWFactory(histwalk.DegreeGrouper{M: 5}),
		histwalk.GNRWFactory(histwalk.HashGrouper{M: 5}),
		histwalk.GNRWFactory(histwalk.AttrGrouper{Attr: histwalk.AttrReviews, M: 5}),
	}
	budgets := []int{500, 1000, 1500}

	for _, attr := range []string{"degree", histwalk.AttrReviews} {
		fig, err := histwalk.EstimationFigure(histwalk.EstimationConfig{
			ID:        "fig9-" + attr,
			Title:     "estimate AVG(" + attr + ") — lower error is better",
			Graph:     g,
			Attr:      attr,
			Factories: factories,
			Budgets:   budgets,
			Trials:    *trials,
			Seed:      *seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := fig.Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
		best, bestErr := "", 1e18
		for _, s := range fig.Series {
			if y := s.Y[len(s.Y)-1]; y < bestErr {
				best, bestErr = s.Name, y
			}
		}
		fmt.Printf("→ best strategy for AVG(%s) at budget %d: %s (%.4f)\n\n",
			attr, budgets[len(budgets)-1], best, bestErr)
	}
	fmt.Println("The paper's guidance (§4.1): when the aggregate of interest is known")
	fmt.Println("in advance, group neighbors by that attribute.")

	// One practical session applying that guidance: GNRW stratified by
	// reviews_count, estimating two aggregates from the same walk — the
	// average reviews count and the share of prolific users.
	res, err := histwalk.Run(context.Background(), histwalk.Spec{
		Graph:  g,
		Walker: histwalk.GNRWFactory(histwalk.AttrGrouper{Attr: histwalk.AttrReviews, M: 5}),
		Budget: budgets[len(budgets)-1],
		Chains: 4,
		Seed:   *seed,
		Estimators: []histwalk.EstimatorSpec{
			{Kind: histwalk.AggMean, Attr: histwalk.AttrReviews},
			{Name: "share with >= 50 reviews", Kind: histwalk.AggProportion,
				Attr: histwalk.AttrReviews, Predicate: func(v float64) bool { return v >= 50 }},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	prolific := 0
	for v := 0; v < g.NumNodes(); v++ {
		if x, ok := g.AttrValue(histwalk.AttrReviews, histwalk.Node(v)); ok && x >= 50 {
			prolific++
		}
	}
	mean, share := res.Estimates[0], res.Estimates[1]
	fmt.Printf("\none GNRW session (4 chains × %d queries), two aggregates from the same walk:\n", budgets[len(budgets)-1])
	fmt.Printf("  AVG(reviews_count) %.1f (truth %.1f)\n", mean.Point, reviewsTruth)
	fmt.Printf("  %s: %.3f (truth %.3f)\n", share.Name,
		share.Point, float64(prolific)/float64(g.NumNodes()))
}
