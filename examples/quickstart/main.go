// Quickstart: sample an online social network through its restricted
// neighborhood-query interface and estimate an aggregate.
//
// This example builds a synthetic OSN and describes the whole sampling
// run as one declarative histwalk.Spec — the paper's CNRW sampler, a
// 500-unique-query budget per chain, four independent chains — then
// executes it with histwalk.Run, which fans the chains out over the
// deterministic parallel engine and merges their estimates with a
// confidence interval. No hand-written step/budget loop required.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"histwalk"
)

func main() {
	// 1. A graph to sample. In a real deployment this would be a live
	// OSN behind histwalk.Client; here we synthesize one.
	rng := rand.New(rand.NewSource(7))
	g := histwalk.PowerLawCommunities(20000, 15, 1000, 2.3, 0.5, 1, rng)
	g = g.LargestComponent()
	fmt.Printf("graph: %d nodes, %d edges, true avg degree %.2f\n",
		g.NumNodes(), g.NumEdges(), g.AvgDegree())

	// 2. The whole run as one spec: CNRW is a drop-in replacement for
	// the simple random walk with the same stationary distribution
	// π(v) ∝ degree and provably no worse variance (Theorems 1-2 of
	// the paper). The default estimator is the population average
	// degree with the design-appropriate harmonic correction.
	spec := histwalk.Spec{
		Graph:  g,
		Walker: histwalk.CNRWFactory(),
		Budget: 500, // unique queries per chain — the paper's cost metric
		Chains: 4,   // independent crawlers, each with its own cache
		Seed:   7,
	}

	// 3. Run it. The Result is bit-identical for any Workers setting.
	res, err := histwalk.Run(context.Background(), spec)
	if err != nil {
		log.Fatal(err)
	}

	est := res.Estimates[0]
	fmt.Printf("walked %d steps over %d chains, spent %d unique queries\n",
		res.TotalSteps, len(res.Chains), res.TotalQueries)
	for i, c := range res.Chains {
		fmt.Printf("  chain %d: start %d, %d steps, %d queries, estimate %.2f\n",
			i, c.Start, c.Steps, c.Queries, est.PerChain[i])
	}
	fmt.Printf("estimated avg degree %.2f (truth %.2f, relative error %.1f%%)\n",
		est.Point, g.AvgDegree(), 100*histwalk.RelativeError(est.Point, g.AvgDegree()))
	if est.HasInterval {
		fmt.Printf("95%% confidence interval [%.2f, %.2f], Gelman-Rubin R^ %.3f\n",
			est.Interval.Low, est.Interval.High, est.GelmanRubin)
	}
}
