// Quickstart: sample an online social network through its restricted
// neighborhood-query interface and estimate an aggregate.
//
// This example builds a synthetic OSN, wraps it in the simulated
// query interface (which counts unique queries, the paper's cost
// metric), runs the paper's CNRW sampler under a 500-query budget, and
// prints the average-degree estimate next to the ground truth.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"histwalk"
)

func main() {
	// 1. A graph to sample. In a real deployment this would be a live
	// OSN behind histwalk.Client; here we synthesize one.
	rng := rand.New(rand.NewSource(7))
	g := histwalk.PowerLawCommunities(20000, 15, 1000, 2.3, 0.5, 1, rng)
	g = g.LargestComponent()
	fmt.Printf("graph: %d nodes, %d edges, true avg degree %.2f\n",
		g.NumNodes(), g.NumEdges(), g.AvgDegree())

	// 2. The restricted access interface: only local neighborhood
	// queries, with unique-query accounting.
	sim := histwalk.NewSimulator(g)

	// 3. The sampler: CNRW is a drop-in replacement for the simple
	// random walk with the same stationary distribution π(v) ∝ degree
	// and provably no worse variance (Theorems 1-2 of the paper).
	start := histwalk.Node(rng.Intn(g.NumNodes()))
	walker := histwalk.NewCNRW(sim, start, rng)

	// 4. The estimator: SRW-family samples are degree-biased, so the
	// average degree uses the harmonic (ratio) correction.
	est := histwalk.NewAvgDegree(histwalk.DegreeProportional)

	const budget = 500
	for sim.QueryCost() < budget {
		v, err := walker.Step()
		if err != nil {
			log.Fatal(err)
		}
		if err := est.Add(g.Degree(v)); err != nil {
			log.Fatal(err)
		}
	}

	avg, err := est.Estimate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("walked %d steps, spent %d unique queries (%d served from cache)\n",
		walker.Steps(), sim.QueryCost(), sim.TotalRequests()-sim.QueryCost())
	fmt.Printf("estimated avg degree %.2f (truth %.2f, relative error %.1f%%)\n",
		avg, g.AvgDegree(), 100*histwalk.RelativeError(avg, g.AvgDegree()))
}
