module histwalk

go 1.24
