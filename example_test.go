package histwalk_test

// Godoc examples for the public API. Each example is deterministic, so
// go test verifies its output.

import (
	"context"
	"fmt"
	"math/rand"

	"histwalk"
)

// ExampleRun shows the declarative session API: describe the whole
// sampling run as one Spec — data source, walker, budget, chains —
// and Run executes it on the parallel engine. On a complete graph
// every node has the same degree, so the estimate is exact.
func ExampleRun() {
	g := histwalk.Complete(10) // every node has degree 9
	res, err := histwalk.Run(context.Background(), histwalk.Spec{
		Graph:  g,
		Walker: histwalk.CNRWFactory(),
		Budget: 8, // unique queries per chain
		Chains: 2,
		Seed:   1,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("%s = %.0f from %d chains\n",
		res.Estimates[0].Name, res.Estimates[0].Point, len(res.Chains))
	// Output: avg(degree) = 9 from 2 chains
}

// ExampleNewCNRW shows the manual sampling loop the session API
// replaces (still supported): walk under a unique-query budget and
// estimate the average degree.
func ExampleNewCNRW() {
	g := histwalk.Complete(10) // every node has degree 9
	sim := histwalk.NewSimulator(g)
	w := histwalk.NewCNRW(sim, 0, rand.New(rand.NewSource(1)))
	est := histwalk.NewAvgDegree(histwalk.DegreeProportional)
	for sim.QueryCost() < 10 {
		v, err := w.Step()
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		if err := est.Add(g.Degree(v)); err != nil {
			fmt.Println("error:", err)
			return
		}
	}
	avg, _ := est.Estimate()
	fmt.Printf("avg degree = %.0f\n", avg)
	// Output: avg degree = 9
}

// ExampleGraph_Summarize computes the Table 1 statistics of the paper's
// clustered synthetic graph; the numbers match the paper's row exactly.
func ExampleGraph_Summarize() {
	g := histwalk.ClusteredCliques([]int{10, 30, 50})
	s := g.Summarize()
	fmt.Printf("nodes=%d edges=%d triangles=%d\n", s.Nodes, s.Edges, s.Triangles)
	// Output: nodes=90 edges=1707 triangles=23780
}

// ExampleSimulator_QueryCost demonstrates the paper's §2.3 cost metric:
// repeated queries are served from the crawler's cache for free.
func ExampleSimulator_QueryCost() {
	g := histwalk.Complete(5)
	sim := histwalk.NewSimulator(g)
	sim.Neighbors(0)
	sim.Neighbors(0) // cache hit
	sim.Neighbors(1)
	fmt.Printf("unique=%d total=%d\n", sim.QueryCost(), sim.TotalRequests())
	// Output: unique=2 total=3
}

// ExampleExactStationary verifies Eq. (3): the simple random walk's
// stationary probability of a node is its degree over 2|E|. On a star
// graph the center holds exactly half the mass.
func ExampleExactStationary() {
	g := histwalk.Star(5) // center degree 4, leaves degree 1
	pi, err := histwalk.ExactStationary(histwalk.SRWMatrix(g))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("pi(center)=%.3f pi(leaf)=%.3f\n", pi[0], pi[1])
	// Output: pi(center)=0.500 pi(leaf)=0.125
}

// ExampleNewConditionalMean estimates a conditional aggregate of the
// kind that motivates the paper ("the average friend count of all users
// living in Texas"): here, the mean value over even-numbered nodes
// only, from an exactly degree-proportional sample stream.
func ExampleNewConditionalMean() {
	c := histwalk.NewConditionalMean(histwalk.DegreeProportional)
	// Samples (value, degree, predicate): nodes with value 10 and 30
	// match; reweighting by 1/degree undoes the frequency bias.
	c.Add(10, 1, true)
	c.Add(30, 3, true)
	c.Add(30, 3, true)
	c.Add(30, 3, true)
	c.Add(99, 2, false)
	avg, _ := c.Estimate()
	fmt.Printf("conditional mean = %.0f\n", avg)
	// Output: conditional mean = 20
}
