package histwalk

// Re-exports of the pipelined access layer (internal/access and
// internal/access/httpclient): the context-aware Transport seam, the
// latency-hiding Prefetcher with speculative frontier prefetch and
// cross-chain single-flight dedup, and the live HTTP JSON
// neighbor-list transport. Specs select the layer with the Transport,
// Window and Latency fields; these exports are for callers composing
// the pieces directly.

import (
	"time"

	"histwalk/internal/access"
	"histwalk/internal/access/httpclient"
	"histwalk/internal/graphstore"
)

// Pipelined access layer types.
type (
	// Transport is one context-aware neighborhood fetch against a
	// remote interface — the bottom seam of the pipelined access
	// layer. Simulator, SharedSimulator, SimTransport and the HTTP
	// client all implement it.
	Transport = access.Transport
	// Row is one neighborhood response in wire form: neighbors, the
	// node's attributes, and free per-neighbor summaries.
	Row = access.Row
	// NeighborSummary is the free summary data of one listed neighbor.
	NeighborSummary = access.NeighborSummary
	// SimTransport is a concurrency-safe Transport over a graph store
	// with an optional fixed per-fetch latency, for latency-hiding
	// measurements without a network.
	SimTransport = access.SimTransport
	// Prefetcher wraps any Transport with a shared row cache,
	// cross-chain single-flight dedup and windowed speculative
	// frontier prefetch; chains read through per-chain PipeViews.
	Prefetcher = access.Prefetcher
	// PipeView is one chain's Client over a Prefetcher, with
	// chain-local accounting bit-identical to a private Simulator's.
	PipeView = access.PipeView
	// PipelineStats snapshots a Prefetcher's network-side counters.
	PipelineStats = access.PipelineStats
	// HTTPTransportConfig configures an HTTP transport: endpoint URL,
	// auth header, retry/backoff tuning.
	HTTPTransportConfig = httpclient.Config
	// HTTPTransport is the live Transport over a JSON neighbor-list
	// endpoint, with jittered-backoff retries honoring Retry-After.
	HTTPTransport = httpclient.Client
)

// NewSimTransport returns a transport serving rows from st, delaying
// every fetch by latency (0 = none).
func NewSimTransport(st graphstore.Store, latency time.Duration) *SimTransport {
	return access.NewSimTransport(st, latency)
}

// NewPrefetcher returns a pipeline over t with the given speculative
// in-flight window (0 = demand-driven only).
func NewPrefetcher(t Transport, window int) *Prefetcher {
	return access.NewPrefetcher(t, window)
}

// NewHTTPTransport returns a Transport crawling a live JSON
// neighbor-list endpoint (see internal/access/httpclient for the wire
// format).
func NewHTTPTransport(cfg HTTPTransportConfig) (*HTTPTransport, error) {
	return httpclient.New(cfg)
}

// HTTPTransportHandler returns the server side of the HTTP transport's
// wire format over a graph store — any histwalk dataset served as a
// fake social API, for tests, smoke runs and demos.
var HTTPTransportHandler = httpclient.Handler
