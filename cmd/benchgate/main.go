// Command benchgate enforces the walk hot path's allocation gate and
// reports performance deltas against the recorded baseline.
//
// It reads `go test -bench -benchmem` output on stdin, extracts the
// BenchmarkWalkStep/* results, and
//
//   - FAILS (exit 1) if any step benchmark exceeds the baseline's
//     max_allocs_per_step gate — the zero-allocation hot path is a
//     tested contract, not an aspiration;
//   - FAILS (exit 1) if any step benchmark exceeds the baseline's
//     max_b_per_step bytes-per-op gate, when the baseline sets one —
//     B/op is host-independent like allocs/op, and catching byte
//     regressions catches the "amortized history grew" class of bug
//     that a pure allocation count misses;
//   - prints each walker's ns/op and steps/sec next to the baseline
//     recorded in BENCH_core.json, with the delta, so CI logs show at a
//     glance whether the step path got slower (ns/op itself is not
//     gated: it is host-dependent);
//   - when BenchmarkBatchedChains results are on stdin, additionally
//     prints the aggregate multi-chain steps/sec per walker and K, and
//     the batched-vs-sequential speedup for every pair present (also
//     not gated: it is a throughput report, not a contract);
//   - FAILS (exit 1) if the baseline declares speedup_gate pairs and
//     the slow/fast wall-clock ratio of any pair falls below its
//     min_speedup — the pipelined access layer's latency hiding is a
//     tested contract too. Ratios are host-independent where both
//     sides are dominated by the same simulated transport latency.
//
// A baseline with "max_allocs_per_step": -1 disables the allocation
// and bytes gates (and the -benchmem requirement) — used by baselines
// whose benchmarks measure wall-clock crawls, not per-step allocation
// (BENCH_access.json). An explicit 0 gates at exactly zero allocs/op
// (BENCH_obs.json's metric record paths); omitting the field keeps the
// legacy gate of 1.
//
// Usage:
//
//	go test -run xxx -bench 'WalkStep|BatchedChains' -benchmem -benchtime 1000000x . | go run ./cmd/benchgate -baseline BENCH_core.json
//	go test -run xxx -bench PipelinedCrawl -benchtime 1x . | go run ./cmd/benchgate -baseline BENCH_access.json -prefix BenchmarkPipelinedCrawl/
//
// With -loadgen it gates a cmd/loadgen report instead of bench output:
// any lost or failed job fails unconditionally (durability and
// correctness are host-independent), and the p99 submit-to-terminal
// latency is gated against the baseline's loadgen.p99_ms — but only
// when the baseline is not marked "provisional": true, the repo's
// convention for numbers recorded on an unrepresentative host, where
// wall-clock comparisons would gate noise.
//
//	go run ./cmd/loadgen -jobs 2000 -out loadgen.json
//	go run ./cmd/benchgate -baseline BENCH_service.json -loadgen loadgen.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// baselineFile mirrors the machine-readable part of BENCH_core.json.
type baselineFile struct {
	Gate struct {
		// MaxAllocsPerStep is a pointer so an explicit 0 gates at
		// exactly zero allocs/op (BENCH_obs.json's record-path
		// contract) while an absent field keeps the legacy default of
		// 1; -1 disables the alloc/bytes gates.
		MaxAllocsPerStep *float64 `json:"max_allocs_per_step"`
		// MaxBPerStep gates bytes per op; 0 (absent) disables the gate.
		MaxBPerStep float64 `json:"max_b_per_step"`
	} `json:"gate"`
	Benchmarks map[string]struct {
		NsPerOp       float64 `json:"ns_per_op"`
		BPerOp        float64 `json:"b_per_op"`
		AllocsPerOp   float64 `json:"allocs_per_op"`
		BeforeNsPerOp float64 `json:"before_ns_per_op,omitempty"`
	} `json:"benchmarks"`
	// SpeedupGates are wall-clock ratio contracts: slow/fast must be at
	// least min_speedup, both names measured in this run.
	SpeedupGates []struct {
		Slow       string  `json:"slow"`
		Fast       string  `json:"fast"`
		MinSpeedup float64 `json:"min_speedup"`
	} `json:"speedup_gate"`
	// Provisional marks baselines recorded on an unrepresentative host;
	// wall-clock gates (the loadgen p99) are reported but not enforced.
	Provisional bool `json:"provisional"`
	// Loadgen is the cmd/loadgen latency baseline for -loadgen mode.
	Loadgen *struct {
		P99MS float64 `json:"p99_ms"`
		// MaxP99Ratio is the allowed measured/baseline headroom
		// (0 = 1.5): latency gates need slack that allocation gates
		// don't.
		MaxP99Ratio float64 `json:"max_p99_ratio"`
	} `json:"loadgen"`
}

// loadgenReport mirrors cmd/loadgen's Output.
type loadgenReport struct {
	Mode       string  `json:"mode"`
	Jobs       int     `json:"jobs"`
	JobsPerSec float64 `json:"jobs_per_sec"`
	Latency    struct {
		P50 float64 `json:"p50"`
		P99 float64 `json:"p99"`
	} `json:"latency_ms"`
	Done     int `json:"done"`
	Failed   int `json:"failed"`
	Rejected int `json:"rejected"`
	Lost     int `json:"lost"`
}

// runLoadgen gates a loadgen report: loss and failure are absolute
// contracts; the p99 latency is gated against the baseline only when
// the baseline is non-provisional.
func runLoadgen(out io.Writer, baselinePath, reportPath string) (failures int, err error) {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return 0, fmt.Errorf("benchgate: reading baseline: %w", err)
	}
	var base baselineFile
	if err := json.Unmarshal(raw, &base); err != nil {
		return 0, fmt.Errorf("benchgate: parsing baseline %s: %w", baselinePath, err)
	}
	raw, err = os.ReadFile(reportPath)
	if err != nil {
		return 0, fmt.Errorf("benchgate: reading loadgen report: %w", err)
	}
	var rep loadgenReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		return 0, fmt.Errorf("benchgate: parsing loadgen report %s: %w", reportPath, err)
	}
	fmt.Fprintf(out, "loadgen (%s): %d jobs, %.1f done jobs/sec, p50 %.1fms p99 %.1fms, rejected %d\n",
		rep.Mode, rep.Jobs, rep.JobsPerSec, rep.Latency.P50, rep.Latency.P99, rep.Rejected)
	if rep.Lost > 0 {
		failures++
		fmt.Fprintf(out, "LOADGEN GATE FAILED: %d job(s) lost — acknowledged submissions vanished\n", rep.Lost)
	}
	if rep.Failed > 0 {
		failures++
		fmt.Fprintf(out, "LOADGEN GATE FAILED: %d job(s) failed\n", rep.Failed)
	}
	if rep.Done == 0 {
		failures++
		fmt.Fprintln(out, "LOADGEN GATE FAILED: no jobs completed")
	}
	if base.Loadgen == nil || base.Loadgen.P99MS <= 0 {
		fmt.Fprintln(out, "loadgen p99: no baseline recorded, not gated")
		return failures, nil
	}
	ratio := rep.Latency.P99 / base.Loadgen.P99MS
	maxRatio := base.Loadgen.MaxP99Ratio
	if maxRatio <= 0 {
		maxRatio = 1.5
	}
	switch {
	case base.Provisional:
		fmt.Fprintf(out, "loadgen p99: %.1fms vs provisional baseline %.1fms (%.2fx, not gated)\n",
			rep.Latency.P99, base.Loadgen.P99MS, ratio)
	case ratio > maxRatio:
		failures++
		fmt.Fprintf(out, "LOADGEN GATE FAILED: p99 %.1fms > baseline %.1fms * %.2f\n",
			rep.Latency.P99, base.Loadgen.P99MS, maxRatio)
	default:
		fmt.Fprintf(out, "loadgen p99: %.1fms <= baseline %.1fms * %.2f ok\n",
			rep.Latency.P99, base.Loadgen.P99MS, maxRatio)
	}
	return failures, nil
}

// result is one parsed benchmark line.
type result struct {
	name    string // normalized, e.g. "BenchmarkWalkStep/CNRW"
	nsPerOp float64
	bytes   float64
	allocs  float64
	hasMem  bool
}

// benchLine matches `BenchmarkX/Y-8  1000  123 ns/op  4 B/op  0 allocs/op`
// (the -P GOMAXPROCS suffix and the memory columns are optional).
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+([0-9.]+) ns/op(?:\s+([0-9.]+) B/op\s+([0-9.]+) allocs/op)?`)

// parseBench extracts benchmark results from `go test -bench` output.
func parseBench(r io.Reader) ([]result, error) {
	var out []result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		name := m[1]
		// Strip the trailing -P GOMAXPROCS suffix, if present.
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("benchgate: bad ns/op in %q: %v", sc.Text(), err)
		}
		res := result{name: name, nsPerOp: ns}
		if m[4] != "" {
			res.bytes, err = strconv.ParseFloat(m[3], 64)
			if err != nil {
				return nil, fmt.Errorf("benchgate: bad B/op in %q: %v", sc.Text(), err)
			}
			res.allocs, err = strconv.ParseFloat(m[4], 64)
			if err != nil {
				return nil, fmt.Errorf("benchgate: bad allocs/op in %q: %v", sc.Text(), err)
			}
			res.hasMem = true
		}
		out = append(out, res)
	}
	return out, sc.Err()
}

// stepsPerSec converts a per-step latency to throughput.
func stepsPerSec(nsPerOp float64) float64 {
	if nsPerOp <= 0 {
		return 0
	}
	return 1e9 / nsPerOp
}

// run is the testable body of main.
func run(in io.Reader, out io.Writer, baselinePath, prefix string) (failures int, err error) {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return 0, fmt.Errorf("benchgate: reading baseline: %w", err)
	}
	var base baselineFile
	if err := json.Unmarshal(raw, &base); err != nil {
		return 0, fmt.Errorf("benchgate: parsing baseline %s: %w", baselinePath, err)
	}
	gate := 1.0 // legacy default when the baseline omits the field
	if base.Gate.MaxAllocsPerStep != nil {
		gate = *base.Gate.MaxAllocsPerStep
	}
	memGated := gate >= 0 // -1 disables the alloc/bytes gates entirely
	results, err := parseBench(in)
	if err != nil {
		return 0, err
	}
	matched := 0
	for _, r := range results {
		if !strings.HasPrefix(r.name, prefix) {
			continue
		}
		matched++
		line := fmt.Sprintf("%-38s %10.1f ns/op %14.0f steps/sec", r.name, r.nsPerOp, stepsPerSec(r.nsPerOp))
		if b, ok := base.Benchmarks[r.name]; ok && b.NsPerOp > 0 {
			delta := 100 * (r.nsPerOp - b.NsPerOp) / b.NsPerOp
			line += fmt.Sprintf("   baseline %8.1f ns/op (%+6.1f%%)", b.NsPerOp, delta)
			if b.BeforeNsPerOp > 0 {
				line += fmt.Sprintf("   pre-rewrite %8.1f ns/op (%.2fx)", b.BeforeNsPerOp, b.BeforeNsPerOp/r.nsPerOp)
			}
		} else {
			line += "   (no baseline entry)"
		}
		if !memGated {
			// wall-clock benchmark; no per-op memory contract
		} else if !r.hasMem {
			failures++
			line += "   MISSING allocs/op (run with -benchmem)"
		} else if r.allocs > gate {
			failures++
			line += fmt.Sprintf("   ALLOC GATE FAILED: %.1f allocs/op > %.1f", r.allocs, gate)
		} else if bGate := base.Gate.MaxBPerStep; bGate > 0 && r.bytes > bGate {
			failures++
			line += fmt.Sprintf("   BYTES GATE FAILED: %.1f B/op > %.1f", r.bytes, bGate)
		} else {
			line += fmt.Sprintf("   allocs/op %.0f <= %.0f ok", r.allocs, gate)
		}
		fmt.Fprintln(out, line)
	}
	if matched == 0 {
		return 1, fmt.Errorf("benchgate: no %s* results on stdin (did the bench run?)", prefix)
	}
	reportBatched(out, &base, results)
	failures += gateSpeedups(out, &base, results)
	return failures, nil
}

// gateSpeedups enforces the baseline's speedup_gate entries against
// the measured results, returning the number of failed gates. A gate
// whose benchmarks are missing from stdin fails — a contract that did
// not run has not passed.
func gateSpeedups(out io.Writer, base *baselineFile, results []result) (failures int) {
	if len(base.SpeedupGates) == 0 {
		return 0
	}
	byName := map[string]float64{}
	for _, r := range results {
		byName[r.name] = r.nsPerOp // repeated runs (-count): last wins
	}
	for _, g := range base.SpeedupGates {
		slow, okS := byName[g.Slow]
		fast, okF := byName[g.Fast]
		if !okS || !okF || fast <= 0 {
			failures++
			fmt.Fprintf(out, "SPEEDUP GATE FAILED: %s vs %s: results missing from this run\n", g.Slow, g.Fast)
			continue
		}
		ratio := slow / fast
		if ratio < g.MinSpeedup {
			failures++
			fmt.Fprintf(out, "SPEEDUP GATE FAILED: %s / %s = %.2fx < required %.2fx\n",
				g.Slow, g.Fast, ratio, g.MinSpeedup)
			continue
		}
		fmt.Fprintf(out, "speedup gate: %s / %s = %.2fx >= %.2fx ok\n", g.Slow, g.Fast, ratio, g.MinSpeedup)
	}
	return failures
}

// batchedPrefix marks the multi-chain throughput benchmarks; their
// names are BenchmarkBatchedChains/<walker>/K=<k>/<seq|batched>.
const batchedPrefix = "BenchmarkBatchedChains/"

// reportBatched prints the aggregate multi-chain stepping report when
// BenchmarkBatchedChains results are present: steps/sec per entry
// (with the baseline delta when BENCH_core.json records one) and the
// batched-vs-sequential speedup for every <walker>/K=<k> pair. Nothing
// here is gated — aggregate throughput is host-dependent.
func reportBatched(out io.Writer, base *baselineFile, results []result) {
	byName := map[string]float64{}
	var names []string
	for _, r := range results {
		if !strings.HasPrefix(r.name, batchedPrefix) {
			continue
		}
		if _, seen := byName[r.name]; !seen {
			names = append(names, r.name)
		}
		byName[r.name] = r.nsPerOp // repeated runs (-count): last wins
	}
	if len(names) == 0 {
		return
	}
	fmt.Fprintln(out, "batched multi-chain stepping (aggregate, not gated):")
	for _, name := range names {
		ns := byName[name]
		line := fmt.Sprintf("%-46s %10.1f ns/op %14.0f steps/sec", name, ns, stepsPerSec(ns))
		if b, ok := base.Benchmarks[name]; ok && b.NsPerOp > 0 {
			line += fmt.Sprintf("   baseline %8.1f ns/op (%+6.1f%%)", b.NsPerOp, 100*(ns-b.NsPerOp)/b.NsPerOp)
		}
		fmt.Fprintln(out, line)
	}
	for _, name := range names {
		if !strings.HasSuffix(name, "/seq") {
			continue
		}
		pair := strings.TrimSuffix(name, "/seq") + "/batched"
		bns, ok := byName[pair]
		if !ok || bns <= 0 {
			continue
		}
		fmt.Fprintf(out, "%-46s %.2fx aggregate speedup over sequential\n",
			strings.TrimSuffix(strings.TrimPrefix(name, batchedPrefix), "/seq"), byName[name]/bns)
	}
}

func main() {
	baseline := flag.String("baseline", "BENCH_core.json", "baseline JSON with the allocation gate and reference numbers")
	prefix := flag.String("prefix", "BenchmarkWalkStep/", "benchmark name prefix to gate")
	loadgen := flag.String("loadgen", "", "gate a cmd/loadgen JSON report instead of bench output on stdin")
	flag.Parse()
	var (
		failures int
		err      error
	)
	if *loadgen != "" {
		failures, err = runLoadgen(os.Stdout, *baseline, *loadgen)
	} else {
		failures, err = run(os.Stdin, os.Stdout, *baseline, *prefix)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %d gate failure(s)\n", failures)
		os.Exit(1)
	}
	fmt.Println("benchgate: all gates passed")
}
