package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBaseline = `{
  "gate": {"max_allocs_per_step": 1, "max_b_per_step": 64},
  "benchmarks": {
    "BenchmarkWalkStep/SRW":  {"ns_per_op": 26.1, "allocs_per_op": 0, "before_ns_per_op": 18.0},
    "BenchmarkWalkStep/CNRW": {"ns_per_op": 240.0, "allocs_per_op": 0, "before_ns_per_op": 695.1},
    "BenchmarkBatchedChains/CNRW/K=16/batched": {"ns_per_op": 1000.0}
  }
}`

func writeBaseline(t *testing.T) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "BENCH_core.json")
	if err := os.WriteFile(p, []byte(sampleBaseline), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestGatePassesCleanRun(t *testing.T) {
	in := strings.NewReader(`
goos: linux
BenchmarkWalkStep/SRW-8      	 1000000	        26.29 ns/op	       0 B/op	       0 allocs/op
BenchmarkWalkStep/CNRW       	 1000000	       287.9 ns/op	      18 B/op	       0 allocs/op
BenchmarkOther/ignored       	 1000000	       100.0 ns/op	     999 B/op	      99 allocs/op
PASS
`)
	var out strings.Builder
	failures, err := run(in, &out, writeBaseline(t), "BenchmarkWalkStep/")
	if err != nil {
		t.Fatal(err)
	}
	if failures != 0 {
		t.Fatalf("failures = %d, want 0\n%s", failures, out.String())
	}
	if !strings.Contains(out.String(), "pre-rewrite") {
		t.Fatalf("delta against pre-rewrite baseline not printed:\n%s", out.String())
	}
	if strings.Contains(out.String(), "ignored") {
		t.Fatal("non-prefixed benchmark leaked into the gate")
	}
}

func TestGateFailsOnAllocRegression(t *testing.T) {
	in := strings.NewReader(`BenchmarkWalkStep/CNRW-4 	 1000000	       300.0 ns/op	     120 B/op	       3 allocs/op`)
	var out strings.Builder
	failures, err := run(in, &out, writeBaseline(t), "BenchmarkWalkStep/")
	if err != nil {
		t.Fatal(err)
	}
	if failures != 1 {
		t.Fatalf("failures = %d, want 1\n%s", failures, out.String())
	}
	if !strings.Contains(out.String(), "ALLOC GATE FAILED") {
		t.Fatalf("failure not reported:\n%s", out.String())
	}
}

func TestGateFailsOnByteRegression(t *testing.T) {
	in := strings.NewReader(`BenchmarkWalkStep/CNRW-4 	 1000000	       300.0 ns/op	     120 B/op	       0 allocs/op`)
	var out strings.Builder
	failures, err := run(in, &out, writeBaseline(t), "BenchmarkWalkStep/")
	if err != nil {
		t.Fatal(err)
	}
	if failures != 1 {
		t.Fatalf("failures = %d, want 1\n%s", failures, out.String())
	}
	if !strings.Contains(out.String(), "BYTES GATE FAILED") {
		t.Fatalf("byte regression not reported:\n%s", out.String())
	}
}

func TestBatchedAggregateReport(t *testing.T) {
	in := strings.NewReader(`
BenchmarkWalkStep/SRW-8                          	 1000000	        26.29 ns/op	       0 B/op	       0 allocs/op
BenchmarkBatchedChains/CNRW/K=16/seq-8           	 1000000	      2400.0 ns/op	      40 B/op	       0 allocs/op
BenchmarkBatchedChains/CNRW/K=16/batched-8       	 1000000	       960.0 ns/op	      40 B/op	       0 allocs/op
PASS
`)
	var out strings.Builder
	failures, err := run(in, &out, writeBaseline(t), "BenchmarkWalkStep/")
	if err != nil {
		t.Fatal(err)
	}
	// Batched entries report throughput only: their 40 B/op must not
	// trip the step gate, which applies to the -prefix benchmarks.
	if failures != 0 {
		t.Fatalf("failures = %d, want 0\n%s", failures, out.String())
	}
	got := out.String()
	for _, want := range []string{
		"batched multi-chain stepping",
		"1041667 steps/sec", // 1e9 / 960
		"2.50x aggregate speedup over sequential",
		"baseline   1000.0 ns/op", // the batched baseline entry matched
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("report missing %q:\n%s", want, got)
		}
	}
}

func TestGateFailsWithoutBenchmem(t *testing.T) {
	in := strings.NewReader(`BenchmarkWalkStep/SRW 	 1000000	       26.3 ns/op`)
	var out strings.Builder
	failures, err := run(in, &out, writeBaseline(t), "BenchmarkWalkStep/")
	if err != nil {
		t.Fatal(err)
	}
	if failures != 1 {
		t.Fatalf("failures = %d, want 1 (missing -benchmem must not pass silently)", failures)
	}
}

func TestGateErrorsOnEmptyInput(t *testing.T) {
	var out strings.Builder
	if _, err := run(strings.NewReader("PASS\n"), &out, writeBaseline(t), "BenchmarkWalkStep/"); err == nil {
		t.Fatal("want error when no step benchmarks are present")
	}
}

// An explicit "max_allocs_per_step": 0 must gate at exactly zero (the
// obs record-path contract), while a baseline that omits the field
// keeps the legacy gate of 1.
func TestZeroAllocGate(t *testing.T) {
	zeroBaseline := `{
  "gate": {"max_allocs_per_step": 0},
  "benchmarks": {"BenchmarkObsRecord/counter": {"ns_per_op": 6.0, "allocs_per_op": 0}}
}`
	p := filepath.Join(t.TempDir(), "BENCH_obs.json")
	if err := os.WriteFile(p, []byte(zeroBaseline), 0o644); err != nil {
		t.Fatal(err)
	}

	var out strings.Builder
	failures, err := run(strings.NewReader(
		`BenchmarkObsRecord/counter-8 	 2000000	       6.1 ns/op	       0 B/op	       0 allocs/op`),
		&out, p, "BenchmarkObsRecord/")
	if err != nil {
		t.Fatal(err)
	}
	if failures != 0 {
		t.Fatalf("0 allocs/op under a 0 gate: failures = %d, want 0\n%s", failures, out.String())
	}

	out.Reset()
	failures, err = run(strings.NewReader(
		`BenchmarkObsRecord/counter-8 	 2000000	       6.1 ns/op	       8 B/op	       1 allocs/op`),
		&out, p, "BenchmarkObsRecord/")
	if err != nil {
		t.Fatal(err)
	}
	if failures == 0 {
		t.Fatalf("1 alloc/op under a 0 gate must fail\n%s", out.String())
	}
	if !strings.Contains(out.String(), "ALLOC GATE FAILED") {
		t.Fatalf("failure not reported:\n%s", out.String())
	}
}

func TestOmittedAllocGateDefaultsToOne(t *testing.T) {
	noGateBaseline := `{
  "gate": {},
  "benchmarks": {"BenchmarkWalkStep/SRW": {"ns_per_op": 26.1, "allocs_per_op": 0}}
}`
	p := filepath.Join(t.TempDir(), "BENCH_legacy.json")
	if err := os.WriteFile(p, []byte(noGateBaseline), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	failures, err := run(strings.NewReader(
		`BenchmarkWalkStep/SRW-8 	 1000000	       26.3 ns/op	       8 B/op	       1 allocs/op`),
		&out, p, "BenchmarkWalkStep/")
	if err != nil {
		t.Fatal(err)
	}
	if failures != 0 {
		t.Fatalf("1 alloc/op under the legacy default gate of 1: failures = %d, want 0\n%s", failures, out.String())
	}
}

const pipelineBaseline = `{
  "gate": {"max_allocs_per_step": -1},
  "benchmarks": {
    "BenchmarkPipelinedCrawl/w=1/chains=1":  {"ns_per_op": 1500000000},
    "BenchmarkPipelinedCrawl/w=32/chains=1": {"ns_per_op": 250000000}
  },
  "speedup_gate": [
    {"slow": "BenchmarkPipelinedCrawl/w=1/chains=1",
     "fast": "BenchmarkPipelinedCrawl/w=32/chains=1",
     "min_speedup": 5.0}
  ]
}`

func writePipelineBaseline(t *testing.T) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "BENCH_access.json")
	if err := os.WriteFile(p, []byte(pipelineBaseline), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

// The -1 alloc-gate sentinel must accept wall-clock benchmarks run
// without -benchmem, and the speedup gate must pass when the measured
// ratio clears the minimum.
func TestSpeedupGatePasses(t *testing.T) {
	in := strings.NewReader(`
BenchmarkPipelinedCrawl/w=1/chains=1     	       1	1600000000 ns/op	       135.0 demand_misses
BenchmarkPipelinedCrawl/w=32/chains=1    	       1	 250000000 ns/op	         8.000 demand_misses
PASS
`)
	var out strings.Builder
	failures, err := run(in, &out, writePipelineBaseline(t), "BenchmarkPipelinedCrawl/")
	if err != nil {
		t.Fatal(err)
	}
	if failures != 0 {
		t.Fatalf("failures = %d, want 0\n%s", failures, out.String())
	}
	if !strings.Contains(out.String(), "6.40x >= 5.00x ok") {
		t.Fatalf("speedup gate report missing:\n%s", out.String())
	}
	if strings.Contains(out.String(), "MISSING allocs/op") {
		t.Fatalf("disabled alloc gate still requires -benchmem:\n%s", out.String())
	}
}

func TestSpeedupGateFailsBelowMinimum(t *testing.T) {
	in := strings.NewReader(`
BenchmarkPipelinedCrawl/w=1/chains=1     	       1	 900000000 ns/op
BenchmarkPipelinedCrawl/w=32/chains=1    	       1	 250000000 ns/op
`)
	var out strings.Builder
	failures, err := run(in, &out, writePipelineBaseline(t), "BenchmarkPipelinedCrawl/")
	if err != nil {
		t.Fatal(err)
	}
	if failures != 1 {
		t.Fatalf("failures = %d, want 1\n%s", failures, out.String())
	}
	if !strings.Contains(out.String(), "SPEEDUP GATE FAILED") {
		t.Fatalf("failure not reported:\n%s", out.String())
	}
}

func TestSpeedupGateFailsWhenPairMissing(t *testing.T) {
	in := strings.NewReader(`BenchmarkPipelinedCrawl/w=1/chains=1 	       1	1600000000 ns/op`)
	var out strings.Builder
	failures, err := run(in, &out, writePipelineBaseline(t), "BenchmarkPipelinedCrawl/")
	if err != nil {
		t.Fatal(err)
	}
	if failures != 1 {
		t.Fatalf("failures = %d, want 1 (a gate that did not run has not passed)\n%s", failures, out.String())
	}
	if !strings.Contains(out.String(), "results missing") {
		t.Fatalf("missing-pair failure not reported:\n%s", out.String())
	}
}

// writeFiles drops a baseline and a loadgen report into a temp dir and
// returns their paths.
func writeLoadgenPair(t *testing.T, baseline, report string) (string, string) {
	t.Helper()
	dir := t.TempDir()
	bp := filepath.Join(dir, "baseline.json")
	rp := filepath.Join(dir, "report.json")
	if err := os.WriteFile(bp, []byte(baseline), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(rp, []byte(report), 0o644); err != nil {
		t.Fatal(err)
	}
	return bp, rp
}

func TestLoadgenGateFailsOnLoss(t *testing.T) {
	bp, rp := writeLoadgenPair(t,
		`{"provisional": true, "loadgen": {"p99_ms": 100}}`,
		`{"mode":"kill","jobs":100,"done":97,"failed":1,"lost":2,"latency_ms":{"p50":10,"p99":50}}`)
	var out strings.Builder
	failures, err := runLoadgen(&out, bp, rp)
	if err != nil {
		t.Fatal(err)
	}
	if failures != 2 {
		t.Fatalf("failures = %d, want 2 (loss + failure)\n%s", failures, out.String())
	}
	if !strings.Contains(out.String(), "2 job(s) lost") || !strings.Contains(out.String(), "1 job(s) failed") {
		t.Fatalf("loss/failure not reported:\n%s", out.String())
	}
}

func TestLoadgenP99GateSkippedWhileProvisional(t *testing.T) {
	bp, rp := writeLoadgenPair(t,
		`{"provisional": true, "loadgen": {"p99_ms": 100}}`,
		`{"mode":"inproc","jobs":100,"done":100,"latency_ms":{"p50":10,"p99":900}}`)
	var out strings.Builder
	failures, err := runLoadgen(&out, bp, rp)
	if err != nil {
		t.Fatal(err)
	}
	if failures != 0 {
		t.Fatalf("failures = %d, want 0 (provisional baseline must not gate wall clock)\n%s", failures, out.String())
	}
	if !strings.Contains(out.String(), "not gated") {
		t.Fatalf("provisional skip not reported:\n%s", out.String())
	}
}

func TestLoadgenP99GateEnforcedWhenNotProvisional(t *testing.T) {
	bp, rp := writeLoadgenPair(t,
		`{"loadgen": {"p99_ms": 100, "max_p99_ratio": 1.5}}`,
		`{"mode":"inproc","jobs":100,"done":100,"latency_ms":{"p50":10,"p99":200}}`)
	var out strings.Builder
	failures, err := runLoadgen(&out, bp, rp)
	if err != nil {
		t.Fatal(err)
	}
	if failures != 1 || !strings.Contains(out.String(), "LOADGEN GATE FAILED: p99") {
		t.Fatalf("failures = %d, want p99 gate failure\n%s", failures, out.String())
	}

	bp2, rp2 := writeLoadgenPair(t,
		`{"loadgen": {"p99_ms": 100, "max_p99_ratio": 1.5}}`,
		`{"mode":"inproc","jobs":100,"done":100,"latency_ms":{"p50":10,"p99":120}}`)
	out.Reset()
	failures, err = runLoadgen(&out, bp2, rp2)
	if err != nil {
		t.Fatal(err)
	}
	if failures != 0 || !strings.Contains(out.String(), "ok") {
		t.Fatalf("failures = %d, want pass within headroom\n%s", failures, out.String())
	}
}
