package main

import (
	"os"
	"path/filepath"
	"testing"

	"histwalk"
)

// TestBuildKnownKinds smoke-tests every generator the flag accepts.
func TestBuildKnownKinds(t *testing.T) {
	kinds := []string{
		"complete", "barbell", "clustered", "er", "gnm", "ba", "hk",
		"ws", "sbm", "plc", "star", "cycle", "path", "grid",
		"facebook", "gplus", "yelp", "youtube",
	}
	for _, kind := range kinds {
		g, err := build(kind, 60, 3, 0.1, 1)
		if err != nil {
			t.Fatalf("build(%q): %v", kind, err)
		}
		if g.NumNodes() == 0 || g.NumEdges() == 0 {
			t.Fatalf("build(%q): empty graph (%d nodes, %d edges)", kind, g.NumNodes(), g.NumEdges())
		}
	}
	if _, err := build("nope", 60, 3, 0.1, 1); err == nil {
		t.Fatal("unknown generator accepted")
	}
}

// TestGenerateRoundTripsStats generates a small graph to a temp file
// the way the command does and reads it back: node count, edge count
// and average degree must survive the trip exactly.
func TestGenerateRoundTripsStats(t *testing.T) {
	g, err := build("ba", 200, 3, 0.1, 7)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "graph.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := histwalk.WriteEdgeList(f, g); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	in, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	back, _, err := histwalk.ReadEdgeList(in)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumNodes() != g.NumNodes() || back.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip changed the graph: %d/%d nodes, %d/%d edges",
			back.NumNodes(), g.NumNodes(), back.NumEdges(), g.NumEdges())
	}
	if back.AvgDegree() != g.AvgDegree() {
		t.Fatalf("round trip changed avg degree: %v vs %v", back.AvgDegree(), g.AvgDegree())
	}
}

// TestAttributeFilesRoundTrip covers the -attrs path: dataset
// stand-ins carry attributes, and each written attribute file must
// parse back to the original vector.
func TestAttributeFilesRoundTrip(t *testing.T) {
	g, err := build("yelp", 300, 3, 0.1, 3)
	if err != nil {
		t.Fatal(err)
	}
	names := g.AttrNames()
	if len(names) == 0 {
		t.Fatal("yelp stand-in has no attributes to test")
	}
	dir := t.TempDir()
	for _, name := range names {
		vals, _ := g.Attr(name)
		path := filepath.Join(dir, "g."+name)
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := histwalk.WriteAttr(f, name, vals); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		in, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		got, err := histwalk.ReadAttr(in, g.NumNodes())
		in.Close()
		if err != nil {
			t.Fatal(err)
		}
		for i := range vals {
			if got[i] != vals[i] {
				t.Fatalf("attr %q node %d: %v != %v", name, i, got[i], vals[i])
			}
		}
	}
}
