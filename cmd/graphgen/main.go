// Command graphgen generates a synthetic graph (any of the library's
// generators or dataset stand-ins) and writes it as a plain-text edge
// list, optionally with attribute files.
//
// Usage:
//
//	graphgen -kind ba -n 10000 -m 5 -out graph.txt
//	graphgen -kind yelp -n 6000 -out yelp.txt -attrs
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"histwalk"
)

func main() {
	kind := flag.String("kind", "ba", "generator: complete, barbell, clustered, er, gnm, ba, hk, ws, sbm, plc, star, cycle, path, grid, or a dataset name ("+strings.Join(histwalk.DatasetNames(), ", ")+")")
	n := flag.Int("n", 1000, "node count (or clique size for barbell)")
	m := flag.Int("m", 3, "edges per node (ba/hk/gnm-total), ring degree (ws)")
	p := flag.Float64("p", 0.1, "edge/rewire/triad probability (er/ws/hk/sbm)")
	out := flag.String("out", "", "output edge-list file (default stdout)")
	attrs := flag.Bool("attrs", false, "also write <out>.<attr> files for each attribute")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	g, err := build(*kind, *n, *m, *p, *seed)
	if err != nil {
		fail(err)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		w = f
	}
	if err := histwalk.WriteEdgeList(w, g); err != nil {
		fail(err)
	}
	if *attrs && *out != "" {
		for _, name := range g.AttrNames() {
			vals, _ := g.Attr(name)
			f, err := os.Create(*out + "." + name)
			if err != nil {
				fail(err)
			}
			if err := histwalk.WriteAttr(f, name, vals); err != nil {
				f.Close()
				fail(err)
			}
			f.Close()
		}
	}
	fmt.Fprintf(os.Stderr, "graphgen: %s — %d nodes, %d edges, avg degree %.2f\n",
		g.Name(), g.NumNodes(), g.NumEdges(), g.AvgDegree())
}

func build(kind string, n, m int, p float64, seed int64) (*histwalk.Graph, error) {
	rng := rand.New(rand.NewSource(seed))
	switch kind {
	case "complete":
		return histwalk.Complete(n), nil
	case "barbell":
		return histwalk.Barbell(n), nil
	case "clustered":
		return histwalk.ClusteredCliques([]int{n / 9, n / 3, n - n/9 - n/3}), nil
	case "er":
		return histwalk.ErdosRenyi(n, p, rng), nil
	case "gnm":
		return histwalk.GNM(n, m*n, rng), nil
	case "ba":
		return histwalk.BarabasiAlbert(n, m, rng), nil
	case "hk":
		return histwalk.HolmeKim(n, m, p, rng), nil
	case "ws":
		return histwalk.WattsStrogatz(n, m, p, rng), nil
	case "sbm":
		k := n / 10
		if k < 2 {
			k = 2
		}
		sizes := make([]int, 10)
		for i := range sizes {
			sizes[i] = k
		}
		return histwalk.PlantedPartition(sizes, 0.3, p/10, rng), nil
	case "plc":
		return histwalk.PowerLawCommunities(n, 10, n/10, 2.3, 0.5, m, rng), nil
	case "star":
		return histwalk.Star(n), nil
	case "cycle":
		return histwalk.Cycle(n), nil
	case "path":
		return histwalk.Path(n), nil
	case "grid":
		side := 1
		for side*side < n {
			side++
		}
		return histwalk.Grid(side, side), nil
	default:
		if g := histwalk.DatasetByName(kind, seed); g != nil {
			return g, nil
		}
		return nil, fmt.Errorf("unknown generator %q", kind)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "graphgen:", err)
	os.Exit(1)
}
