package main

// Kill-and-restart end-to-end test, run by CI under -race: a real
// histwalkd child process (this test binary re-executing itself) is
// SIGKILLed mid-job, restarted on the same -store-dir, and must resume
// the job from its last durable checkpoint to a Result byte-identical
// to an uninterrupted direct Run. SIGKILL gives the process no chance
// to flush or unwind, so this exercises the store's real crash
// surface: torn final log lines, unreplayed checkpoints, a job frozen
// in the running state.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"strings"
	"syscall"
	"testing"
	"time"

	"histwalk"
)

const childEnv = "HISTWALKD_E2E_CHILD"

// TestMain turns the test binary into histwalkd itself when re-executed
// with the child marker, so the kill test drives a genuine separate
// process without needing a prebuilt binary on disk.
func TestMain(m *testing.M) {
	if os.Getenv(childEnv) == "1" {
		ctx, stop := context.WithCancel(context.Background())
		go func() {
			// The parent stops the final child with SIGTERM; earlier
			// incarnations die by SIGKILL, which nothing can catch.
			ch := make(chan os.Signal, 1)
			signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
			<-ch
			stop()
		}()
		if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "histwalkd child:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// startChild launches this test binary as a histwalkd process over
// store dir and waits for its listening line.
func startChild(t *testing.T, dir string) (string, *exec.Cmd) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-addr", "127.0.0.1:0", "-max-concurrent", "1", "-store-dir", dir)
	cmd.Env = append(os.Environ(), childEnv+"=1")
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	lines := bufio.NewReader(out)
	deadline := time.Now().Add(60 * time.Second)
	for {
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatal("child never started listening")
		}
		line, err := lines.ReadString('\n')
		if err != nil {
			cmd.Process.Kill()
			t.Fatalf("child exited before listening: %v", err)
		}
		if base, ok := strings.CutPrefix(strings.TrimSpace(line), "histwalkd listening on "); ok {
			go func() {
				for {
					if _, err := lines.ReadString('\n'); err != nil {
						return
					}
				}
			}()
			return base, cmd
		}
	}
}

func getStatus(t *testing.T, base, id string) histwalk.JobStatus {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st histwalk.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestDaemonKillRestartResume(t *testing.T) {
	dir := t.TempDir()
	base, child := startChild(t, dir)

	// A step-metered job long enough to be mid-flight when the kill
	// lands, with checkpoints accumulating on disk as it runs.
	spec := histwalk.SpecJSON{
		Dataset: "clustered",
		Walker:  "cnrw",
		Budget:  20000,
		Chains:  4,
		Seed:    4242,
		Cost:    "steps",
	}
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st histwalk.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || st.ID == "" {
		t.Fatalf("submit: %d %+v", resp.StatusCode, st)
	}

	// Wait until the job is visibly mid-run with checkpoints behind it.
	deadline := time.Now().Add(60 * time.Second)
	for {
		cur := getStatus(t, base, st.ID)
		var spent int
		for _, c := range cur.Chains {
			if c.Spent > spent {
				spent = c.Spent
			}
		}
		if spent >= 3000 {
			break
		}
		if cur.State != histwalk.JobQueued && cur.State != histwalk.JobRunning {
			t.Fatalf("job finished too early to kill: %s", cur.State)
		}
		if time.Now().After(deadline) {
			t.Fatal("job never reached mid-run")
		}
		time.Sleep(time.Millisecond)
	}

	// kill -9: no flush, no drain, no goodbye.
	if err := child.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	child.Wait()

	// Restart on the same store dir; the job must resume and finish.
	base2, child2 := startChild(t, dir)
	deadline = time.Now().Add(120 * time.Second)
	var fin histwalk.JobStatus
	for {
		fin = getStatus(t, base2, st.ID)
		if fin.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("resumed job stuck in %s", fin.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if fin.State != histwalk.JobDone || fin.Result == nil {
		t.Fatalf("resumed job ended %s (%s)", fin.State, fin.Error)
	}

	// The acceptance bar: byte-identical (as JSON) to an uninterrupted
	// direct Run of the same resolved spec.
	resolved, err := spec.Spec()
	if err != nil {
		t.Fatal(err)
	}
	want, err := histwalk.Run(context.Background(), resolved)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, err := json.Marshal(fin.Result)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Fatalf("resumed result differs from uninterrupted direct Run:\n%s\nvs\n%s", gotJSON, wantJSON)
	}

	// The second daemon dies cleanly on SIGTERM, preserving the store.
	if err := child2.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- child2.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful child exit: %v", err)
		}
	case <-time.After(60 * time.Second):
		child2.Process.Kill()
		t.Fatal("second child did not exit on SIGTERM")
	}
}
