package main

// End-to-end smoke test of the daemon, run by CI: start histwalkd on a
// random port, submit a CNRW job on a synthetic graph over real HTTP,
// stream its SSE progress events, fetch the result, and assert it is
// byte-identical (as JSON) to a direct histwalk.Run of the same spec —
// then shut the daemon down gracefully and expect a clean exit.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"histwalk"
)

// startDaemon runs the daemon on a random port and returns its base
// URL plus a shutdown func that cancels its ctx and waits for exit.
func startDaemon(t *testing.T, args ...string) (string, func() error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	pr, pw := io.Pipe()
	done := make(chan error, 1)
	go func() {
		err := run(ctx, append([]string{"-addr", "127.0.0.1:0"}, args...), pw)
		pw.Close()
		done <- err
	}()
	lines := bufio.NewReader(pr)
	first := make(chan string, 1)
	go func() {
		line, err := lines.ReadString('\n')
		if err != nil {
			first <- ""
			return
		}
		first <- strings.TrimSpace(line)
		io.Copy(io.Discard, lines) // keep the pipe drained
	}()
	var base string
	select {
	case line := <-first:
		const prefix = "histwalkd listening on "
		if !strings.HasPrefix(line, prefix) {
			t.Fatalf("unexpected startup line %q", line)
		}
		base = strings.TrimPrefix(line, prefix)
	case err := <-done:
		t.Fatalf("daemon exited before listening: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never started listening")
	}
	return base, func() error {
		cancel()
		select {
		case err := <-done:
			return err
		case <-time.After(60 * time.Second):
			return fmt.Errorf("daemon did not exit")
		}
	}
}

func TestDaemonEndToEnd(t *testing.T) {
	base, stop := startDaemon(t)

	spec := histwalk.SpecJSON{
		Dataset: "clustered", // synthetic clustered-cliques stand-in
		Walker:  "cnrw",
		Budget:  60,
		Chains:  4,
		Seed:    99,
	}
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st histwalk.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || st.ID == "" {
		t.Fatalf("submit: %d %+v", resp.StatusCode, st)
	}

	// Stream the job's SSE events to completion; budgets must be
	// monotone per chain and the stream must end with the result event.
	resp, err = http.Get(base + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var lastType string
	var progressEvents int
	spent := map[int]int{}
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev histwalk.JobEvent
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("bad event %q: %v", line, err)
		}
		lastType = ev.Type
		if ev.Type == "progress" && ev.Chain != nil {
			progressEvents++
			if ev.Chain.Spent < spent[ev.Chain.Chain] {
				t.Fatalf("chain %d budget went backwards", ev.Chain.Chain)
			}
			spent[ev.Chain.Chain] = ev.Chain.Spent
		}
	}
	resp.Body.Close()
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lastType != "result" || progressEvents == 0 {
		t.Fatalf("stream ended on %q after %d progress events", lastType, progressEvents)
	}

	// Fetch the finished job and compare against a direct Run: the
	// JSON serializations must match byte-for-byte.
	resp, err = http.Get(base + "/v1/jobs/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	var fin histwalk.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&fin); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if fin.State != histwalk.JobDone || fin.Result == nil {
		t.Fatalf("job ended %s (%s)", fin.State, fin.Error)
	}
	resolved, err := spec.Spec()
	if err != nil {
		t.Fatal(err)
	}
	want, err := histwalk.Run(context.Background(), resolved)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, err := json.Marshal(fin.Result)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Fatalf("daemon result differs from direct Run:\n%s\nvs\n%s", gotJSON, wantJSON)
	}

	// Metrics should reflect the completed job.
	var met histwalk.ServiceMetrics
	resp, err = http.Get(base + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&met); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if met.Submitted != 1 || met.Done != 1 {
		t.Fatalf("metrics %+v", met)
	}

	if err := stop(); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
}

// TestDaemonHTTPTransportJob is the live-crawl smoke, run by CI: a
// histwalk dataset is served as a fake social API (the HTTP transport's
// JSON neighbor-list wire format, behind an auth check), the daemon
// receives a wire-form spec whose transport entry points at that
// endpoint, and the finished job must carry the same estimates and
// chain-local query accounting as a direct histwalk.Run of the same
// spec — the pipeline's network-side counters are scheduling-dependent
// and deliberately excluded from the comparison.
func TestDaemonHTTPTransportJob(t *testing.T) {
	g := histwalk.GooglePlusN(200, 1)
	inner := histwalk.HTTPTransportHandler(g)
	var hits atomic.Int64
	api := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get("X-Api-Key") != "sekrit" {
			http.Error(w, "unauthorized", http.StatusUnauthorized)
			return
		}
		hits.Add(1)
		inner.ServeHTTP(w, r)
	}))
	defer api.Close()

	base, stop := startDaemon(t)

	spec := histwalk.SpecJSON{
		Walker: "cnrw",
		Budget: 40,
		Chains: 2,
		Seed:   3,
		Transport: &histwalk.TransportJSON{
			Kind:       "http",
			URL:        api.URL,
			Window:     8,
			Start:      7,
			AuthHeader: "X-Api-Key",
			AuthValue:  "sekrit",
		},
	}
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st histwalk.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || st.ID == "" {
		t.Fatalf("submit: %d %+v", resp.StatusCode, st)
	}

	// Poll to a terminal state; the crawl is small but goes over two
	// real HTTP hops (daemon -> api), so give it a generous deadline.
	var fin histwalk.JobStatus
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&fin); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if fin.State != histwalk.JobQueued && fin.State != histwalk.JobRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", fin.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if fin.State != histwalk.JobDone || fin.Result == nil {
		t.Fatalf("job ended %s (%s)", fin.State, fin.Error)
	}
	if hits.Load() == 0 {
		t.Fatal("daemon never reached the HTTP endpoint")
	}

	// A direct Run of the same wire spec (same endpoint, same seed) must
	// produce identical estimates and chain-local accounting: the
	// speculation window changes wall-clock only, never trajectories.
	resolved, err := spec.Spec()
	if err != nil {
		t.Fatal(err)
	}
	want, err := histwalk.Run(context.Background(), resolved)
	if err != nil {
		t.Fatal(err)
	}
	if fin.Result.TotalQueries != want.TotalQueries {
		t.Fatalf("total queries: daemon %d, direct %d", fin.Result.TotalQueries, want.TotalQueries)
	}
	wantJSON, err := json.Marshal(want.Estimates)
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, err := json.Marshal(fin.Result.Estimates)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Fatalf("daemon estimates differ from direct Run:\n%s\nvs\n%s", gotJSON, wantJSON)
	}
	if fin.Result.Pipeline == nil || fin.Result.Pipeline.NetworkFetches == 0 {
		t.Fatalf("result missing pipeline stats: %+v", fin.Result.Pipeline)
	}
	// The status itself also surfaces the pipeline's final wire-side
	// accounting, so clients can read fetch/dedup behavior without
	// digging into the Result.
	if fin.Pipeline == nil || fin.Pipeline.NetworkFetches == 0 {
		t.Fatalf("job status missing pipeline stats: %+v", fin.Pipeline)
	}

	if err := stop(); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
}

// TestDaemonObservability exercises the ops surface over real HTTP:
// /healthz must report build info, /metrics must serve the Prometheus
// text exposition with the service/engine/runtime metric families, and
// /debug/pprof/ must be mounted when (and only when) -pprof is set.
func TestDaemonObservability(t *testing.T) {
	base, stop := startDaemon(t, "-pprof")

	// Run one tiny job so the scrape below reflects real activity.
	body, err := json.Marshal(histwalk.SpecJSON{
		Dataset: "clustered", Walker: "srw", Budget: 30, Chains: 2, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st histwalk.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		var cur histwalk.JobStatus
		if err := json.NewDecoder(resp.Body).Decode(&cur); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if cur.State == histwalk.JobDone {
			break
		}
		if cur.State != histwalk.JobQueued && cur.State != histwalk.JobRunning {
			t.Fatalf("job ended %s (%s)", cur.State, cur.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", cur.State)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// /healthz: liveness plus build identification.
	resp, err = http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h histwalk.Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || h.Status != "ok" || h.GoVersion == "" {
		t.Fatalf("healthz: %d %+v", resp.StatusCode, h)
	}

	// /metrics: Prometheus text exposition with the instrumented
	// families from the service, engine, session, and runtime.
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("metrics content type %q", ct)
	}
	text := string(raw)
	// The registry is process-wide, so counters accumulate across the
	// tests in this binary: assert relations, not exact totals.
	metric := func(name string) float64 {
		t.Helper()
		for _, line := range strings.Split(text, "\n") {
			if rest, ok := strings.CutPrefix(line, name+" "); ok {
				v, err := strconv.ParseFloat(rest, 64)
				if err != nil {
					t.Fatalf("metric %s: bad value %q", name, rest)
				}
				return v
			}
		}
		t.Fatalf("exposition missing %s:\n%s", name, text)
		return 0
	}
	if v := metric("histwalk_jobs_submitted_total"); v < 1 {
		t.Errorf("jobs_submitted_total = %v, want >= 1", v)
	}
	if v := metric("histwalk_jobs_done_total"); v < 1 {
		t.Errorf("jobs_done_total = %v, want >= 1", v)
	}
	// Every job this process ran is terminal, so the state gauges must
	// have returned to zero — they are exact, not monotone.
	if v := metric("histwalk_jobs_running"); v != 0 {
		t.Errorf("jobs_running = %v, want 0", v)
	}
	if v := metric("histwalk_jobs_queued"); v != 0 {
		t.Errorf("jobs_queued = %v, want 0", v)
	}
	if v := metric("histwalk_job_run_seconds_count"); v < 1 {
		t.Errorf("job_run_seconds_count = %v, want >= 1", v)
	}
	started, finished := metric("histwalk_chains_started_total"), metric("histwalk_chains_finished_total")
	if started < 2 || finished != started {
		t.Errorf("chains started/finished = %v/%v, want >= 2 and equal", started, finished)
	}
	if v := metric("histwalk_engine_trials_started_total"); v < 1 {
		t.Errorf("engine_trials_started_total = %v, want >= 1", v)
	}
	if v := metric("histwalk_runtime_goroutines"); v < 1 {
		t.Errorf("runtime_goroutines = %v, want >= 1", v)
	}
	if t.Failed() {
		t.Fatalf("exposition was:\n%s", text)
	}

	// pprof is mounted because the daemon was started with -pprof.
	resp, err = http.Get(base + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof with -pprof: %d", resp.StatusCode)
	}

	if err := stop(); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}

	// Without -pprof the profiling surface must not exist.
	base2, stop2 := startDaemon(t)
	resp, err = http.Get(base2 + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof without -pprof: %d, want 404", resp.StatusCode)
	}
	if err := stop2(); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
}

// TestDaemonDrainCancelsQueued verifies the signal path end-to-end: a
// long job occupies the single worker, a queued job waits, shutdown
// arrives — the queued job must end cancelled, and the daemon must
// still exit cleanly within the drain budget after aborting the runner.
func TestDaemonDrainCancelsQueued(t *testing.T) {
	base, stop := startDaemon(t, "-max-concurrent", "1", "-drain", "100ms")

	submit := func(spec histwalk.SpecJSON) histwalk.JobStatus {
		t.Helper()
		body, err := json.Marshal(spec)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st histwalk.JobStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return st
	}
	long := submit(histwalk.SpecJSON{Dataset: "gplus", Walker: "cnrw", Budget: 3000, Chains: 4, Seed: 5})
	queued := submit(histwalk.SpecJSON{Dataset: "clustered", Walker: "srw", Budget: 30, Seed: 6})

	// Wait for the long job to be running (or, on a very fast host,
	// already finished) so the shutdown below exercises the drain path.
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/jobs/" + long.ID)
		if err != nil {
			t.Fatal(err)
		}
		var cur histwalk.JobStatus
		if err := json.NewDecoder(resp.Body).Decode(&cur); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if cur.State != histwalk.JobQueued {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("long job never started")
		}
		time.Sleep(time.Millisecond)
	}

	// The tiny drain budget forces an abort of the running job; the
	// daemon reports the forced shutdown as an error but must exit.
	if err := stop(); err == nil {
		t.Log("drain finished inside the budget (fast host); jobs may have completed")
	} else if !strings.Contains(err.Error(), "forced shutdown") {
		t.Fatalf("unexpected shutdown error: %v", err)
	}
	_ = queued
}
