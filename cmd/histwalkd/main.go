// Command histwalkd is the sampling-job daemon: a long-lived HTTP
// service that accepts serialized sampling-run specs, executes them
// concurrently on the trial-execution engine, streams per-chain
// progress (budget spend, running estimates, Gelman–Rubin R̂) over
// Server-Sent Events, and serves finished Results — each bit-identical
// to a direct histwalk.Run of the same spec.
//
// Usage:
//
//	histwalkd [-addr 127.0.0.1:8080] [-max-concurrent N]
//	          [-queue N] [-store N] [-store-dir DIR] [-drain 30s]
//	          [-pprof] [-trace spans.jsonl]
//
// API (JSON; see internal/service for the full contract):
//
//	POST   /v1/jobs             submit a spec        → 202 job status
//	GET    /v1/jobs             list jobs
//	GET    /v1/jobs/{id}        status + result
//	GET    /v1/jobs/{id}/events SSE progress stream
//	DELETE /v1/jobs/{id}        cancel
//	GET    /v1/metrics          service counters
//	GET    /metrics             Prometheus text exposition
//	GET    /healthz             liveness + build info
//	GET    /debug/pprof/        runtime profiles (with -pprof only)
//
// -trace streams JSONL lifecycle spans (job queued/running/terminal,
// chain start/milestone/finish, pipeline fetch begin/end) to a file;
// -pprof mounts net/http/pprof under /debug/pprof/. Neither affects
// any job's Result — instrumentation consumes no RNG and trajectories
// stay bit-identical.
//
// Example:
//
//	curl -s localhost:8080/v1/jobs -d \
//	  '{"dataset":"gplus","walker":"cnrw","budget":1000,"chains":8,"seed":1}'
//
// With -store-dir the daemon is durable: every job's spec, event log
// and periodic chain checkpoints are persisted to an append-only
// CRC-framed log in that directory (compacted into snapshots as it
// grows). On restart — clean or after a kill -9 — terminal jobs reload
// as queryable history, queued jobs re-enter the queue in admission
// order, and running jobs resume from their last checkpoint to the
// bit-identical Result an uninterrupted run would have produced. SSE
// clients reconnect with Last-Event-ID and miss nothing.
//
// On SIGINT/SIGTERM the daemon drains gracefully: intake closes,
// running jobs finish (within -drain), queued jobs are cancelled, and
// event subscribers receive their terminal events before the listener
// stops.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"histwalk"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "histwalkd:", err)
		os.Exit(1)
	}
}

// run starts the daemon and serves until ctx is cancelled, then drains.
// It is the whole daemon behind a testable seam: the e2e test drives it
// on a random port and shuts it down by cancelling ctx.
func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("histwalkd", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (use port 0 for a random port)")
	maxConcurrent := fs.Int("max-concurrent", 0, "jobs running at once (0 = one per core)")
	queueDepth := fs.Int("queue", 0, "admission queue depth (0 = 256)")
	storeLimit := fs.Int("store", 0, "jobs kept in memory before terminal ones are evicted (0 = 1024)")
	storeDir := fs.String("store-dir", "", "durable job-store directory (empty = in-memory only)")
	drain := fs.Duration("drain", 30*time.Second, "graceful-drain budget on shutdown")
	pprofOn := fs.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/")
	traceFile := fs.String("trace", "", "write JSONL lifecycle trace spans to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			return fmt.Errorf("opening -trace file: %w", err)
		}
		tr := histwalk.NewTracer(f)
		histwalk.SetTracer(tr)
		defer func() {
			histwalk.SetTracer(nil)
			tr.Close()
		}()
	}

	opts := histwalk.ManagerOptions{
		MaxConcurrent: *maxConcurrent,
		QueueDepth:    *queueDepth,
		StoreLimit:    *storeLimit,
	}
	if *storeDir != "" {
		store, err := histwalk.OpenFileJobStore(*storeDir, histwalk.FileStoreOptions{})
		if err != nil {
			return err
		}
		opts.Store = store
	}
	mgr, rec, err := histwalk.OpenManager(opts)
	if err != nil {
		return err
	}
	if *storeDir != "" {
		fmt.Fprintf(out, "histwalkd recovered %d jobs from %s (requeued %d, resumed %d, restarted %d, failed %d) in %v\n",
			rec.Terminal+rec.Requeued+rec.Resumed+rec.Restarted+rec.Failed, *storeDir,
			rec.Requeued, rec.Resumed, rec.Restarted, rec.Failed, rec.Elapsed)
	}
	handler := histwalk.NewServiceHandler(mgr)
	if *pprofOn {
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
	}
	srv := &http.Server{Handler: handler}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "histwalkd listening on http://%s\n", ln.Addr())

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}

	fmt.Fprintf(out, "histwalkd draining (budget %v)\n", *drain)
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Drain the manager first: running jobs finish, queued jobs are
	// cancelled, and every event subscriber observes a terminal event —
	// which is what lets the HTTP shutdown below complete without
	// killing live SSE streams mid-job.
	drainErr := mgr.Shutdown(dctx)
	if err := srv.Shutdown(dctx); err != nil {
		srv.Close()
	}
	if drainErr != nil {
		return fmt.Errorf("forced shutdown after drain budget: %w", drainErr)
	}
	fmt.Fprintln(out, "histwalkd stopped")
	return nil
}
