// Command graphpack converts text edge lists into the .hwg binary
// graph store format, verifies existing stores, prints their header
// stats, and generates synthetic edge-list streams for scale testing.
//
// Usage:
//
//	graphpack pack -in edges.txt[.gz] -out graph.hwg [-name yelp]
//	               [-attr reviews_count=reviews.txt] [-chunk-arcs N] [-tmp DIR]
//	graphpack verify graph.hwg
//	graphpack info graph.hwg
//	graphpack gen -nodes 1000000 -edges 10000000 -seed 1 [-out edges.txt]
//
// pack streams the input through an external sort, so memory use is
// bounded by -chunk-arcs (default 4Mi arcs ≈ 64 MiB) plus one int64
// per distinct node — a 100M-edge list packs in well under a gigabyte.
// Gzip input is detected by magic bytes. The resulting file is
// byte-identical to loading the same list in memory and writing it,
// and walks over it (mmap) are bit-identical to walks over the heap
// graph.
//
// verify runs the full integrity pass: header checksum, section
// checksums, and the CSR invariants (strictly sorted rows, symmetric
// arcs, the loop-stored-once self-loop convention).
//
// gen emits a deterministic pseudo-random edge list (GNM-style
// endpoint pairs) as a stream — O(1) memory regardless of -edges — to
// feed pack in scale tests without materializing a text file first.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strings"

	"histwalk"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "graphpack:", err)
		os.Exit(1)
	}
}

// run dispatches the subcommand; it is the testable seam.
func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: graphpack <pack|verify|info|gen> [flags]")
	}
	switch args[0] {
	case "pack":
		return runPack(args[1:], out)
	case "verify":
		return runVerify(args[1:], out)
	case "info":
		return runInfo(args[1:], out)
	case "gen":
		return runGen(args[1:], out)
	default:
		return fmt.Errorf("unknown subcommand %q (use pack, verify, info or gen)", args[0])
	}
}

// attrFlags collects repeated -attr name=file pairs.
type attrFlags map[string]string

func (a attrFlags) String() string { return "" }
func (a attrFlags) Set(s string) error {
	name, file, ok := strings.Cut(s, "=")
	if !ok || name == "" || file == "" {
		return fmt.Errorf("want -attr name=file, got %q", s)
	}
	if _, dup := a[name]; dup {
		return fmt.Errorf("attribute %q given twice", name)
	}
	a[name] = file
	return nil
}

func runPack(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("graphpack pack", flag.ContinueOnError)
	in := fs.String("in", "", "input edge list (.txt or .gz; \"-\" = stdin)")
	outPath := fs.String("out", "", "output .hwg path")
	name := fs.String("name", "", "dataset name recorded in the header")
	chunkArcs := fs.Int("chunk-arcs", 0, "in-memory sort buffer in arcs (0 = 4Mi; the memory bound)")
	tmp := fs.String("tmp", "", "spill directory (default: system temp)")
	attrs := attrFlags{}
	fs.Var(attrs, "attr", "attach a per-node attribute: name=file (\"node value\" lines, dense IDs; repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *outPath == "" {
		return fmt.Errorf("pack requires -in and -out")
	}

	var edges io.Reader
	if *in == "-" {
		edges = os.Stdin
	} else {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		edges = f
	}
	opts := histwalk.PackOptions{Name: *name, ChunkArcs: *chunkArcs, TmpDir: *tmp}
	if len(attrs) > 0 {
		opts.Attrs = make(map[string]io.Reader, len(attrs))
		for aname, afile := range attrs {
			f, err := os.Open(afile)
			if err != nil {
				return err
			}
			defer f.Close()
			opts.Attrs[aname] = f
		}
	}
	stats, err := histwalk.PackEdgeList(edges, *outPath, opts)
	if err != nil {
		return err
	}
	fi, err := os.Stat(*outPath)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "packed %s: %d nodes, %d edges (%d self-loops), %d lines read, %d spill runs, %d bytes\n",
		*outPath, stats.NumNodes, stats.NumEdges, stats.NumSelfLoops, stats.LinesRead, stats.Runs, fi.Size())
	return nil
}

func runVerify(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("graphpack verify", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: graphpack verify <file.hwg>")
	}
	path := fs.Arg(0)
	if err := histwalk.VerifyGraphStore(path); err != nil {
		return err
	}
	fmt.Fprintf(out, "%s: OK (header, checksums and CSR invariants verified)\n", path)
	return nil
}

func runInfo(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("graphpack info", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: graphpack info <file.hwg>")
	}
	path := fs.Arg(0)
	m, err := histwalk.OpenGraphStore(path)
	if err != nil {
		return err
	}
	defer m.Close()
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "file        %s (%d bytes)\n", path, fi.Size())
	fmt.Fprintf(out, "name        %s\n", m.Name())
	fmt.Fprintf(out, "nodes       %d\n", m.NumNodes())
	fmt.Fprintf(out, "edges       %d (self-loops: %d)\n", m.NumEdges(), m.NumSelfLoops())
	if n := m.NumNodes(); n > 0 {
		fmt.Fprintf(out, "avg degree  %.2f\n", float64(2*m.NumEdges()-m.NumSelfLoops())/float64(n))
	}
	if names := m.AttrNames(); len(names) > 0 {
		fmt.Fprintf(out, "attributes  %s\n", strings.Join(names, ", "))
	}
	return nil
}

func runGen(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("graphpack gen", flag.ContinueOnError)
	nodes := fs.Int64("nodes", 0, "node ID space size")
	edges := fs.Int64("edges", 0, "edge lines to emit (duplicates possible; pack dedups)")
	seed := fs.Int64("seed", 1, "random seed (the stream is deterministic in it)")
	outPath := fs.String("out", "", "output file (default: stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *nodes < 2 || *edges < 1 {
		return fmt.Errorf("gen requires -nodes >= 2 and -edges >= 1")
	}
	w := out
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return genEdges(w, *nodes, *edges, *seed)
}

// genEdges streams a deterministic GNM-style random edge list: each
// line joins node i (a shifted ramp, guaranteeing every ID appears and
// the graph stays near-connected) to a uniform random partner. O(1)
// memory, so arbitrarily large inputs can feed pack's external sort.
func genEdges(w io.Writer, nodes, edges, seed int64) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	rng := rand.New(rand.NewSource(seed))
	fmt.Fprintf(bw, "# graphpack gen nodes=%d edges=%d seed=%d\n", nodes, edges, seed)
	for e := int64(0); e < edges; e++ {
		u := e % nodes
		v := rng.Int63n(nodes)
		if u == v {
			v = (v + 1) % nodes
		}
		if _, err := fmt.Fprintf(bw, "%d %d\n", u, v); err != nil {
			return err
		}
	}
	return bw.Flush()
}
