package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runOK runs a graphpack subcommand and returns its stdout.
func runOK(t *testing.T, args ...string) string {
	t.Helper()
	var out bytes.Buffer
	if err := run(args, &out); err != nil {
		t.Fatalf("graphpack %v: %v", args, err)
	}
	return out.String()
}

func TestGenPackVerifyInfo(t *testing.T) {
	dir := t.TempDir()
	edges := filepath.Join(dir, "edges.txt")
	hwg := filepath.Join(dir, "g.hwg")

	runOK(t, "gen", "-nodes", "500", "-edges", "3000", "-seed", "4", "-out", edges)
	packOut := runOK(t, "pack", "-in", edges, "-out", hwg, "-name", "gen500", "-chunk-arcs", "512")
	if !strings.Contains(packOut, "500 nodes") {
		t.Fatalf("pack output: %q", packOut)
	}
	if out := runOK(t, "verify", hwg); !strings.Contains(out, "OK") {
		t.Fatalf("verify output: %q", out)
	}
	info := runOK(t, "info", hwg)
	for _, want := range []string{"gen500", "nodes       500", "avg degree"} {
		if !strings.Contains(info, want) {
			t.Fatalf("info output missing %q:\n%s", want, info)
		}
	}
}

func TestGenDeterministic(t *testing.T) {
	a := runOK(t, "gen", "-nodes", "50", "-edges", "200", "-seed", "9")
	b := runOK(t, "gen", "-nodes", "50", "-edges", "200", "-seed", "9")
	if a != b {
		t.Fatal("gen is not deterministic in its seed")
	}
	c := runOK(t, "gen", "-nodes", "50", "-edges", "200", "-seed", "10")
	if a == c {
		t.Fatal("gen ignores its seed")
	}
	for _, line := range strings.Split(strings.TrimSpace(a), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		if len(f) != 2 || f[0] == f[1] {
			t.Fatalf("bad gen line %q", line)
		}
	}
}

func TestPackWithAttr(t *testing.T) {
	dir := t.TempDir()
	edges := filepath.Join(dir, "e.txt")
	attr := filepath.Join(dir, "a.txt")
	hwg := filepath.Join(dir, "g.hwg")
	if err := os.WriteFile(edges, []byte("0 1\n1 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(attr, []byte("0 5\n1 6\n2 7\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	runOK(t, "pack", "-in", edges, "-out", hwg, "-attr", "score="+attr)
	if info := runOK(t, "info", hwg); !strings.Contains(info, "attributes  score") {
		t.Fatalf("info output missing attribute:\n%s", info)
	}
}

func TestErrors(t *testing.T) {
	dir := t.TempDir()
	for _, tc := range []struct {
		name string
		args []string
	}{
		{"no-subcommand", nil},
		{"unknown-subcommand", []string{"bogus"}},
		{"pack-missing-flags", []string{"pack"}},
		{"pack-missing-input", []string{"pack", "-in", filepath.Join(dir, "nope.txt"), "-out", filepath.Join(dir, "o.hwg")}},
		{"pack-dup-attr", []string{"pack", "-in", "-", "-out", filepath.Join(dir, "o.hwg"), "-attr", "a=x", "-attr", "a=y"}},
		{"verify-no-arg", []string{"verify"}},
		{"verify-missing-file", []string{"verify", filepath.Join(dir, "nope.hwg")}},
		{"info-no-arg", []string{"info"}},
		{"gen-bad-nodes", []string{"gen", "-nodes", "1", "-edges", "5"}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var out bytes.Buffer
			if err := run(tc.args, &out); err == nil {
				t.Fatalf("graphpack %v succeeded, want error", tc.args)
			}
		})
	}
}
