// Command repro regenerates every table and figure of the paper's
// evaluation section (§6) as text tables, using the synthetic dataset
// stand-ins described in DESIGN.md, plus the supplementary validations
// (Theorems 2 and 3) and ablations (circulation keying, GNRW stratum
// count, frontier sampling).
//
// Usage:
//
//	repro [-quick] [-seed N] [-csv DIR] [-workers N]
//	      [-only table1,fig6,fig7,fig7d,fig8,fig9,fig10,fig10u,fig11,thm2,thm3,ablations]
//
// With -quick the bench-scale configuration is used (seconds per
// figure); the default is the full configuration recorded in
// EXPERIMENTS.md (minutes in total). With -csv every figure and table
// is additionally written as a CSV file into DIR. -workers selects the
// trial-execution engine's pool size (0 = one worker per core); for a
// fixed seed the output is bit-identical for every worker count.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"histwalk/internal/cliutil"
	"histwalk/internal/experiment"
)

var csvDir string

// interrupted is the signal-aware run context: step uses it to tell a
// cancelled experiment from a real failure.
var interrupted context.Context

func main() {
	quick := flag.Bool("quick", false, "use the quick (bench-scale) configuration")
	seed := flag.Int64("seed", 1, "master seed for all experiments")
	only := flag.String("only", "", "comma-separated experiment ids to run (default: all)")
	workers := flag.Int("workers", 0, "trial-execution workers per experiment (default: one per core)")
	flag.StringVar(&csvDir, "csv", "", "also write each figure/table as CSV into this directory")
	flag.Parse()

	if cliutil.ExplicitFlag("workers") && *workers < 1 {
		fmt.Fprintf(os.Stderr, "repro: -workers must be >= 1, got %d\n", *workers)
		os.Exit(1)
	}

	// SIGINT/SIGTERM cancels the run context: the trial engine stops
	// dispatching, the in-flight experiment returns the cancellation,
	// and the tables already printed stand as the partial reproduction.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	interrupted = ctx

	cfg := experiment.FullConfig()
	if *quick {
		cfg = experiment.QuickConfig()
	}
	cfg.Seed = *seed
	cfg.Workers = *workers
	cfg.Ctx = ctx

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}
	run := func(id string) bool {
		return (len(want) == 0 || want[id]) && ctx.Err() == nil
	}

	fmt.Printf("# histwalk reproduction (%s configuration, seed %d)\n\n",
		mode(*quick), cfg.Seed)
	start := time.Now()

	if run("table1") {
		step("table1", func() error { return emitTable(experiment.Table1(cfg)) })
	}
	if run("fig6") {
		step("fig6", func() error {
			fig, err := experiment.Figure6(cfg)
			if err != nil {
				return err
			}
			return emitFig(fig)
		})
	}
	if run("fig7") {
		step("fig7", func() error {
			res, err := experiment.Figure7(cfg)
			if err != nil {
				return err
			}
			return emitDistance(res)
		})
	}
	if run("fig7d") {
		step("fig7d", func() error {
			fig, err := experiment.Figure7d(cfg)
			if err != nil {
				return err
			}
			return emitFig(fig)
		})
	}
	if run("fig8") {
		step("fig8", func() error {
			for _, which := range []int{1, 2} {
				fig, err := experiment.Figure8(cfg, which)
				if err != nil {
					return err
				}
				// The per-node table is large: print the summary
				// deviations the figure is read for, CSV the full data.
				fmt.Printf("## %s — %s\n", fig.ID, fig.Title)
				for _, s := range fig.Series[1:] {
					d, err := experiment.StationaryDeviation(fig, s.Name)
					if err != nil {
						return err
					}
					fmt.Printf("l2 deviation from theoretical %-18s %.5f\n", s.Name, d)
				}
				if csvDir != "" {
					if _, err := fig.SaveCSV(csvDir); err != nil {
						return err
					}
				}
			}
			return nil
		})
	}
	if run("fig9") {
		step("fig9", func() error {
			a, b, err := experiment.Figure9(cfg)
			if err != nil {
				return err
			}
			if err := emitFig(a); err != nil {
				return err
			}
			return emitFig(b)
		})
	}
	if run("fig10") {
		step("fig10", func() error {
			res, err := experiment.Figure10(cfg)
			if err != nil {
				return err
			}
			return emitDistance(res)
		})
	}
	if run("fig10u") {
		step("fig10u", func() error {
			res, err := experiment.Figure10Unique(cfg)
			if err != nil {
				return err
			}
			return emitDistance(res)
		})
	}
	if run("fig11") {
		step("fig11", func() error {
			res, err := experiment.Figure11(cfg)
			if err != nil {
				return err
			}
			return emitDistance(res)
		})
	}
	if run("thm2") {
		step("thm2", func() error {
			steps := 300000
			if *quick {
				steps = 120000
			}
			tb, err := experiment.Theorem2Table(experiment.Theorem2Config{
				Steps: steps, Seed: cfg.Seed, Workers: cfg.Workers, Ctx: cfg.Ctx,
			})
			if err != nil {
				return err
			}
			return emitTable(tb)
		})
	}
	if run("thm3") {
		step("thm3", func() error {
			res, err := experiment.Theorem3(cfg)
			if err != nil {
				return err
			}
			return emitTable(experiment.EscapeTable(res))
		})
	}
	if run("ablations") {
		step("ablations", func() error {
			trials := 80
			if *quick {
				trials = 30
			}
			tb, err := experiment.AblationCirculationTable(experiment.AblationCirculationConfig{
				CliqueSize: 10, Trials: trials, Seed: cfg.Seed, Workers: cfg.Workers, Ctx: cfg.Ctx,
			})
			if err != nil {
				return err
			}
			if err := emitTable(tb); err != nil {
				return err
			}
			gc, err := experiment.AblationGroupCountFigure(cfg)
			if err != nil {
				return err
			}
			if err := emitFig(gc); err != nil {
				return err
			}
			fr, err := experiment.AblationFrontierFigure(cfg)
			if err != nil {
				return err
			}
			return emitFig(fr)
		})
	}

	if ctx.Err() != nil {
		fmt.Printf("\n# interrupted by signal after %v — the experiments above are the partial reproduction; rerun with -only for the rest\n",
			time.Since(start).Round(time.Millisecond))
		return
	}
	fmt.Printf("\n# done in %v\n", time.Since(start).Round(time.Millisecond))
}

func mode(quick bool) string {
	if quick {
		return "quick"
	}
	return "full"
}

func emitFig(fig *experiment.Figure) error {
	if err := fig.Render(os.Stdout); err != nil {
		return err
	}
	if csvDir != "" {
		if _, err := fig.SaveCSV(csvDir); err != nil {
			return err
		}
	}
	return nil
}

func emitTable(t *experiment.Table) error {
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	if csvDir != "" {
		if _, err := t.SaveCSV(csvDir); err != nil {
			return err
		}
	}
	return nil
}

func emitDistance(res *experiment.DistanceResult) error {
	for _, fig := range []*experiment.Figure{res.KL, res.L2, res.Err} {
		if err := emitFig(fig); err != nil {
			return err
		}
	}
	return nil
}

func step(id string, fn func() error) {
	t0 := time.Now()
	if err := fn(); err != nil {
		if interrupted != nil && interrupted.Err() != nil && errors.Is(err, context.Cause(interrupted)) {
			// The signal cancelled this experiment mid-flight; main
			// prints the partial-reproduction summary.
			fmt.Printf("(%s interrupted after %v)\n\n", id, time.Since(t0).Round(time.Millisecond))
			return
		}
		fmt.Fprintf(os.Stderr, "repro: %s failed: %v\n", id, err)
		os.Exit(1)
	}
	fmt.Printf("(%s finished in %v)\n\n", id, time.Since(t0).Round(time.Millisecond))
}
