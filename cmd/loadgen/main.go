// Command loadgen is the sampling-job service's load-test harness: it
// drives thousands of concurrent jobs through a Manager and reports
// sustained throughput and submit-to-terminal latency percentiles as
// JSON (the shape cmd/benchgate gates against BENCH_service.json).
//
// Modes:
//
//	-mode inproc   an in-process Manager (default; no network, measures
//	               the service layer itself)
//	-mode http     an already-running daemon at -addr
//	-mode kill     spawns a real histwalkd child (-daemon binary) over a
//	               durable -store-dir, SIGKILLs it after half the jobs
//	               have been submitted, restarts it on the same store
//	               and keeps the load coming — in-flight jobs must
//	               resume and finish, and the report includes the
//	               restart outage
//
// Job specs cycle through the -mix walker list with consecutive seeds,
// so runs are reproducible. A job is "lost" if the service acknowledged
// its submission but no longer knows it at the end of the run — with a
// durable store that count must be zero, and benchgate fails on any
// loss or job failure.
//
// Examples:
//
//	go run ./cmd/loadgen -jobs 2000 -out loadgen.json
//	go run ./cmd/loadgen -mode kill -daemon ./histwalkd -jobs 400 -budget 2000
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"histwalk"
)

// Output is the machine-readable run report.
type Output struct {
	Mode       string  `json:"mode"`
	Jobs       int     `json:"jobs"`
	Rate       float64 `json:"rate,omitempty"`
	ElapsedSec float64 `json:"elapsed_sec"`
	JobsPerSec float64 `json:"jobs_per_sec"`
	// Latency is submit-to-terminal wall time; in kill mode it includes
	// the outage for jobs that straddle the restart.
	Latency LatencyMS `json:"latency_ms"`
	// Done/Failed/Cancelled partition the acknowledged jobs' outcomes;
	// Rejected counts submissions the service refused (queue full),
	// which are load-shedding, not loss.
	Done      int `json:"done"`
	Failed    int `json:"failed"`
	Cancelled int `json:"cancelled"`
	Rejected  int `json:"rejected,omitempty"`
	// Lost counts acknowledged jobs the service no longer knew at the
	// end — zero is the durability contract.
	Lost int `json:"lost"`
	// Recovery is present in kill mode: the wall time from SIGKILL to
	// the restarted daemon accepting requests again (store recovery
	// happens inside that window).
	Recovery *RecoveryOut `json:"recovery,omitempty"`
}

// LatencyMS holds submit-to-terminal percentiles in milliseconds.
type LatencyMS struct {
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	P99 float64 `json:"p99"`
	Max float64 `json:"max"`
}

// RecoveryOut reports the kill-mode restart outage.
type RecoveryOut struct {
	OutageMS float64 `json:"outage_ms"`
}

// target abstracts where jobs go. await returns the job's terminal
// state, or "lost" if the service acknowledged the job but no longer
// knows it.
type target interface {
	submit(spec histwalk.SpecJSON) (string, error)
	await(ctx context.Context, id string) (string, error)
	close() error
}

// --- in-process target ---

type inprocTarget struct{ m *histwalk.Manager }

func (t *inprocTarget) submit(spec histwalk.SpecJSON) (string, error) {
	st, err := t.m.Submit(spec)
	return st.ID, err
}

func (t *inprocTarget) await(ctx context.Context, id string) (string, error) {
	after := 0
	for {
		evs, terminal, err := t.m.WaitEvents(ctx, id, after)
		if err != nil {
			return "", err
		}
		after += len(evs)
		if terminal {
			st, err := t.m.Get(id)
			if err != nil {
				return "lost", nil
			}
			return string(st.State), nil
		}
	}
}

func (t *inprocTarget) close() error {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	return t.m.Shutdown(ctx)
}

// --- HTTP target ---

// httpTarget drives a daemon over its JSON API. base is swappable so
// kill mode can point in-flight waiters at the restarted process.
type httpTarget struct {
	base   atomic.Value // string
	client *http.Client
}

func newHTTPTarget(base string) *httpTarget {
	t := &httpTarget{client: &http.Client{Timeout: 30 * time.Second}}
	t.base.Store(base)
	return t
}

var errRejected = fmt.Errorf("loadgen: submission rejected")

func (t *httpTarget) submit(spec histwalk.SpecJSON) (string, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return "", err
	}
	resp, err := t.client.Post(t.base.Load().(string)+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable {
		io.Copy(io.Discard, resp.Body)
		return "", errRejected
	}
	var st histwalk.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusAccepted || st.ID == "" {
		return "", fmt.Errorf("loadgen: submit: HTTP %d", resp.StatusCode)
	}
	return st.ID, nil
}

// await polls the job's status. Transport errors are retried — in kill
// mode the daemon is down between SIGKILL and restart — but a daemon
// that answers 404 has durably forgotten the job: that is loss.
func (t *httpTarget) await(ctx context.Context, id string) (string, error) {
	for {
		resp, err := t.client.Get(t.base.Load().(string) + "/v1/jobs/" + id)
		if err == nil {
			if resp.StatusCode == http.StatusNotFound {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				return "lost", nil
			}
			var st histwalk.JobStatus
			decErr := json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			if decErr == nil && st.State.Terminal() {
				return string(st.State), nil
			}
		}
		select {
		case <-ctx.Done():
			return "", ctx.Err()
		case <-time.After(10 * time.Millisecond):
		}
	}
}

func (t *httpTarget) close() error { return nil }

// --- kill-mode child management ---

// child is a spawned histwalkd process.
type child struct {
	cmd  *exec.Cmd
	base string
}

// startChild launches the daemon binary and waits for its listening
// line (recovery of the store happens before it prints).
func startChild(daemon string, args []string) (*child, error) {
	cmd := exec.Command(daemon, args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	lines := bufio.NewReader(out)
	for {
		line, err := lines.ReadString('\n')
		if err != nil {
			cmd.Process.Kill()
			cmd.Wait()
			return nil, fmt.Errorf("loadgen: daemon exited before listening: %v", err)
		}
		if base, ok := strings.CutPrefix(strings.TrimSpace(line), "histwalkd listening on "); ok {
			go io.Copy(io.Discard, lines)
			return &child{cmd: cmd, base: base}, nil
		}
	}
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	mode := fs.String("mode", "inproc", "inproc | http | kill")
	jobs := fs.Int("jobs", 2000, "total jobs to submit")
	rate := fs.Float64("rate", 0, "arrival rate in jobs/sec (0 = as fast as possible)")
	mix := fs.String("mix", "cnrw,gnrw-degree,srw,mhrw", "comma-separated walker mix, cycled over jobs")
	dataset := fs.String("dataset", "clustered", "dataset every job samples")
	budget := fs.Int("budget", 50, "per-chain budget of each job")
	chains := fs.Int("chains", 4, "chains per job")
	seed := fs.Int64("seed", 1, "base seed; job i uses seed+i")
	workers := fs.Int("workers", 0, "Manager concurrency in inproc mode (0 = one per core)")
	addr := fs.String("addr", "", "daemon base URL for -mode http (e.g. http://127.0.0.1:8080)")
	daemon := fs.String("daemon", "", "histwalkd binary for -mode kill")
	storeDir := fs.String("store-dir", "", "store directory for -mode kill (empty = temp dir)")
	outPath := fs.String("out", "", "write the JSON report here (empty = stdout)")
	timeout := fs.Duration("timeout", 10*time.Minute, "overall run deadline")
	if err := fs.Parse(args); err != nil {
		return err
	}
	walkers := strings.Split(*mix, ",")
	for i := range walkers {
		walkers[i] = strings.TrimSpace(walkers[i])
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	var (
		tgt    target
		kid    *child
		outRep = Output{Mode: *mode, Jobs: *jobs, Rate: *rate}
	)
	switch *mode {
	case "inproc":
		m, _, err := histwalk.OpenManager(histwalk.ManagerOptions{
			MaxConcurrent: *workers,
			QueueDepth:    *jobs + 1,
			StoreLimit:    *jobs + 1,
		})
		if err != nil {
			return err
		}
		tgt = &inprocTarget{m: m}
	case "http":
		if *addr == "" {
			return fmt.Errorf("-mode http needs -addr")
		}
		tgt = newHTTPTarget(*addr)
	case "kill":
		if *daemon == "" {
			return fmt.Errorf("-mode kill needs -daemon (path to a histwalkd binary)")
		}
		dir := *storeDir
		if dir == "" {
			d, err := os.MkdirTemp("", "loadgen-store-")
			if err != nil {
				return err
			}
			defer os.RemoveAll(d)
			dir = d
		}
		childArgs := []string{"-addr", "127.0.0.1:0", "-store-dir", dir,
			"-queue", fmt.Sprint(*jobs + 1), "-store", fmt.Sprint(*jobs + 1)}
		var err error
		kid, err = startChild(*daemon, childArgs)
		if err != nil {
			return err
		}
		ht := newHTTPTarget(kid.base)
		tgt = ht
		defer func() {
			if kid != nil {
				kid.cmd.Process.Signal(syscall.SIGTERM)
				kid.cmd.Wait()
			}
		}()
		// Re-spawn on the same store after the mid-run SIGKILL below.
		killAt := *jobs / 2
		restart := func() error {
			kid.cmd.Process.Kill()
			kid.cmd.Wait()
			t0 := time.Now()
			k2, err := startChild(*daemon, childArgs)
			if err != nil {
				return err
			}
			outRep.Recovery = &RecoveryOut{OutageMS: float64(time.Since(t0)) / float64(time.Millisecond)}
			ht.base.Store(k2.base)
			kid = k2
			return nil
		}
		return drive(ctx, tgt, walkers, *dataset, *budget, *chains, *seed, *jobs, *rate,
			killAt, restart, &outRep, *outPath, stdout)
	default:
		return fmt.Errorf("unknown -mode %q", *mode)
	}
	defer tgt.close()
	return drive(ctx, tgt, walkers, *dataset, *budget, *chains, *seed, *jobs, *rate,
		-1, nil, &outRep, *outPath, stdout)
}

// drive submits jobs at the configured arrival rate, waits for every
// outcome, and writes the report. killAt >= 0 triggers the restart hook
// after that many submissions.
func drive(ctx context.Context, tgt target, walkers []string, dataset string,
	budget, chains int, seed int64, jobs int, rate float64,
	killAt int, restart func() error, rep *Output, outPath string, stdout io.Writer) error {

	type outcome struct {
		state   string
		latency time.Duration
	}
	results := make(chan outcome, jobs)
	var wg sync.WaitGroup
	var interval time.Duration
	if rate > 0 {
		interval = time.Duration(float64(time.Second) / rate)
	}
	start := time.Now()
	next := start
	for i := 0; i < jobs; i++ {
		if i == killAt && restart != nil {
			if err := restart(); err != nil {
				return err
			}
		}
		spec := histwalk.SpecJSON{
			Dataset: dataset,
			Walker:  walkers[i%len(walkers)],
			Budget:  budget,
			Chains:  chains,
			Seed:    seed + int64(i),
		}
		t0 := time.Now()
		id, err := tgt.submit(spec)
		if err != nil {
			rep.Rejected++
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			state, err := tgt.await(ctx, id)
			if err != nil {
				results <- outcome{state: "lost"}
				return
			}
			results <- outcome{state: state, latency: time.Since(t0)}
		}()
		if interval > 0 {
			next = next.Add(interval)
			if d := time.Until(next); d > 0 {
				select {
				case <-time.After(d):
				case <-ctx.Done():
					return ctx.Err()
				}
			}
		}
	}
	wg.Wait()
	close(results)

	var lats []time.Duration
	for o := range results {
		switch o.state {
		case "done":
			rep.Done++
			lats = append(lats, o.latency)
		case "failed":
			rep.Failed++
		case "cancelled":
			rep.Cancelled++
		default:
			rep.Lost++
		}
	}
	elapsed := time.Since(start)
	rep.ElapsedSec = elapsed.Seconds()
	if rep.ElapsedSec > 0 {
		rep.JobsPerSec = float64(rep.Done) / rep.ElapsedSec
	}
	rep.Latency = percentiles(lats)

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if outPath != "" {
		if err := os.WriteFile(outPath, enc, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "loadgen: %d jobs in %.2fs (%.1f done jobs/sec, p99 %.1fms) -> %s\n",
			rep.Jobs, rep.ElapsedSec, rep.JobsPerSec, rep.Latency.P99, outPath)
		return nil
	}
	_, err = stdout.Write(enc)
	return err
}

// percentiles computes nearest-rank latency percentiles in ms.
func percentiles(lats []time.Duration) LatencyMS {
	if len(lats) == 0 {
		return LatencyMS{}
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	at := func(p float64) float64 {
		i := int(p*float64(len(lats))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(lats) {
			i = len(lats) - 1
		}
		return ms(lats[i])
	}
	return LatencyMS{P50: at(0.50), P90: at(0.90), P99: at(0.99), Max: ms(lats[len(lats)-1])}
}
