package main

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"histwalk"
	"histwalk/internal/experiment"
)

// TestStatsRoundTripThroughEdgeFile writes a small graph to a temp
// edge-list file, reads it back the way the -edges path does, and
// checks the rendered stats table reports the original graph's exact
// node and edge counts.
func TestStatsRoundTripThroughEdgeFile(t *testing.T) {
	g := histwalk.BarabasiAlbert(150, 3, rand.New(rand.NewSource(11)))
	path := filepath.Join(t.TempDir(), "graph.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := histwalk.WriteEdgeList(f, g); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	in, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	back, _, err := histwalk.ReadEdgeList(in)
	in.Close()
	if err != nil {
		t.Fatal(err)
	}
	back.SetName(path)
	var buf bytes.Buffer
	if err := experiment.DatasetTable([]*histwalk.Graph{back}).Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{fmt.Sprint(g.NumNodes()), fmt.Sprint(g.NumEdges())} {
		if !strings.Contains(out, want) {
			t.Fatalf("stats table missing %q:\n%s", want, out)
		}
	}
	if back.NumNodes() != g.NumNodes() || back.NumEdges() != g.NumEdges() ||
		back.AvgDegree() != g.AvgDegree() {
		t.Fatalf("round trip changed stats: %d nodes / %d edges / %v avg degree, want %d / %d / %v",
			back.NumNodes(), back.NumEdges(), back.AvgDegree(),
			g.NumNodes(), g.NumEdges(), g.AvgDegree())
	}
}

// TestBuildScaled covers the -dataset path with and without the -n
// scale override.
func TestBuildScaled(t *testing.T) {
	for _, name := range []string{"gplus", "yelp", "youtube"} {
		g := buildScaled(name, 500, 1)
		if g == nil {
			t.Fatalf("buildScaled(%q, 500) = nil", name)
		}
		if g.NumNodes() == 0 {
			t.Fatalf("buildScaled(%q, 500): empty graph", name)
		}
	}
	if g := buildScaled("facebook", 0, 1); g == nil {
		t.Fatal("default facebook dataset missing")
	}
	if g := buildScaled("nope", 0, 1); g != nil {
		t.Fatal("unknown dataset accepted")
	}
}
