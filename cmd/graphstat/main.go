// Command graphstat prints the Table 1 statistics row (nodes, edges,
// average degree, average clustering coefficient, triangles) for
// built-in datasets or an edge-list file, so the synthetic stand-ins
// can be audited against the paper's real-data numbers.
//
// Usage:
//
//	graphstat                      # all built-in datasets (default scale)
//	graphstat -dataset yelp -n 6000
//	graphstat -edges graph.txt
//	graphstat -store graph.hwg     # packed binary store, streamed via mmap
//
// -store opens a packed .hwg graph store through the mmap backend and
// computes the statistics over a zero-copy view of the mapping — no
// text parse, no heap copy of the adjacency, so stats on a packed
// multi-gigabyte graph start instantly and stay within a small
// constant of resident heap.
package main

import (
	"flag"
	"fmt"
	"os"

	"histwalk"
	"histwalk/internal/dataset"
	"histwalk/internal/experiment"
)

func main() {
	datasetName := flag.String("dataset", "", "single built-in dataset (default: all)")
	edges := flag.String("edges", "", "edge-list file (overrides -dataset)")
	store := flag.String("store", "", ".hwg graph store, streamed via mmap (overrides -dataset)")
	n := flag.Int("n", 0, "scale override for gplus/yelp/youtube (0 = default)")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	var graphs []*histwalk.Graph
	switch {
	case *store != "":
		m, err := histwalk.OpenGraphStore(*store)
		if err != nil {
			fail(err)
		}
		defer m.Close()
		g, err := m.Graph() // zero-copy view over the mapping
		if err != nil {
			fail(err)
		}
		if g.Name() == "" {
			g.SetName(*store)
		}
		graphs = []*histwalk.Graph{g}
	case *edges != "":
		f, err := os.Open(*edges)
		if err != nil {
			fail(err)
		}
		g, _, err := histwalk.ReadEdgeList(f)
		f.Close()
		if err != nil {
			fail(err)
		}
		g.SetName(*edges)
		graphs = []*histwalk.Graph{g}
	case *datasetName != "":
		g := buildScaled(*datasetName, *n, *seed)
		if g == nil {
			fail(fmt.Errorf("unknown dataset %q", *datasetName))
		}
		graphs = []*histwalk.Graph{g}
	default:
		if *n > 0 {
			graphs = []*histwalk.Graph{
				dataset.FacebookEgo2(*seed),
				dataset.GooglePlusN(*n, *seed),
				dataset.YelpN(*n, *seed),
				dataset.YoutubeN(*n, *seed),
				dataset.ClusteredGraph(),
				dataset.BarbellGraph(100),
			}
		} else {
			graphs = histwalk.AllDatasets(*seed)
		}
	}
	if err := experiment.DatasetTable(graphs).Render(os.Stdout); err != nil {
		fail(err)
	}
}

func buildScaled(name string, n int, seed int64) *histwalk.Graph {
	if n > 0 {
		switch name {
		case "gplus":
			return dataset.GooglePlusN(n, seed)
		case "yelp":
			return dataset.YelpN(n, seed)
		case "youtube":
			return dataset.YoutubeN(n, seed)
		}
	}
	return histwalk.DatasetByName(name, seed)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "graphstat:", err)
	os.Exit(1)
}
