// Command sampler runs a single random-walk sampling session over a
// dataset (built-in stand-in or an edge-list file) and reports the
// aggregate estimate, its relative error against ground truth, and the
// query-cost accounting.
//
// Usage:
//
//	sampler -dataset yelp -algo gnrw-reviews -budget 1000 -attr reviews_count
//	sampler -edges graph.txt -algo cnrw -budget 500
//
// Algorithms: srw, mhrw, nbsrw, cnrw, cnrw-node, nbcnrw, gnrw-degree,
// gnrw-md5, gnrw-reviews.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"histwalk"
	"histwalk/internal/experiment"
)

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func main() {
	datasetName := flag.String("dataset", "facebook", "built-in dataset: "+strings.Join(histwalk.DatasetNames(), ", "))
	edges := flag.String("edges", "", "edge-list file (overrides -dataset)")
	algo := flag.String("algo", "cnrw", "algorithm: srw, mhrw, nbsrw, cnrw, cnrw-node, nbcnrw, gnrw-degree, gnrw-md5, gnrw-reviews")
	budget := flag.Int("budget", 500, "unique-query budget")
	attr := flag.String("attr", "degree", "measure attribute to aggregate (AVG)")
	seed := flag.Int64("seed", 1, "random seed")
	groups := flag.Int("groups", 5, "number of strata for GNRW")
	maxSteps := flag.Int("maxsteps", 0, "step cap (0 = 200×budget)")
	flag.Parse()

	g, err := loadGraph(*edges, *datasetName, *seed)
	if err != nil {
		fail(err)
	}
	factory, ok := factoryFor(*algo, *groups)
	if !ok {
		fail(fmt.Errorf("unknown algorithm %q", *algo))
	}

	fmt.Printf("dataset %s: %d nodes, %d edges, avg degree %.2f\n",
		g.Name(), g.NumNodes(), g.NumEdges(), g.AvgDegree())

	rng := newRand(*seed)
	start := histwalk.Node(rng.Intn(g.NumNodes()))
	for g.Degree(start) == 0 {
		start = histwalk.Node(rng.Intn(g.NumNodes()))
	}
	sim := histwalk.NewSimulator(g)
	walker := factory.New(sim, start, rng)
	design := experiment.DesignFor(factory.Name)
	mean := histwalk.NewMean(design)

	cap := *maxSteps
	if cap <= 0 {
		cap = 200 * *budget
	}
	steps := 0
	for sim.QueryCost() < *budget && steps < cap {
		v, err := walker.Step()
		if err != nil {
			fail(fmt.Errorf("step %d: %w", steps, err))
		}
		val := float64(g.Degree(v))
		if *attr != "degree" {
			x, ok := g.AttrValue(*attr, v)
			if !ok {
				fail(fmt.Errorf("dataset lacks attribute %q", *attr))
			}
			val = x
		}
		if err := mean.Add(val, g.Degree(v)); err != nil {
			fail(err)
		}
		steps++
	}

	est, err := mean.Estimate()
	if err != nil {
		fail(err)
	}
	truth := g.AvgDegree()
	if *attr != "degree" {
		truth, _ = g.MeanAttr(*attr)
	}
	fmt.Printf("algorithm        %s (estimator design: %s)\n", factory.Name, design)
	fmt.Printf("start node       %d\n", start)
	fmt.Printf("steps            %d\n", steps)
	fmt.Printf("unique queries   %d (budget %d)\n", sim.QueryCost(), *budget)
	fmt.Printf("cache hits       %d\n", sim.TotalRequests()-sim.QueryCost())
	fmt.Printf("AVG(%s)          estimate %.4f, truth %.4f, relative error %.4f\n",
		*attr, est, truth, histwalk.RelativeError(est, truth))
}

func loadGraph(edges, name string, seed int64) (*histwalk.Graph, error) {
	if edges != "" {
		f, err := os.Open(edges)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		g, _, err := histwalk.ReadEdgeList(f)
		if err != nil {
			return nil, err
		}
		g.SetName(edges)
		return g.LargestComponent(), nil
	}
	g := histwalk.DatasetByName(name, seed)
	if g == nil {
		return nil, fmt.Errorf("unknown dataset %q (have: %s)", name, strings.Join(histwalk.DatasetNames(), ", "))
	}
	return g, nil
}

func factoryFor(algo string, groups int) (histwalk.Factory, bool) {
	switch algo {
	case "srw":
		return histwalk.SRWFactory(), true
	case "mhrw":
		return histwalk.MHRWFactory(), true
	case "nbsrw":
		return histwalk.NBSRWFactory(), true
	case "cnrw":
		return histwalk.CNRWFactory(), true
	case "cnrw-node":
		return histwalk.CNRWNodeFactory(), true
	case "nbcnrw":
		return histwalk.NBCNRWFactory(), true
	case "gnrw-degree":
		return histwalk.GNRWFactory(histwalk.DegreeGrouper{M: groups}), true
	case "gnrw-md5":
		return histwalk.GNRWFactory(histwalk.HashGrouper{M: groups}), true
	case "gnrw-reviews":
		return histwalk.GNRWFactory(histwalk.AttrGrouper{Attr: histwalk.AttrReviews, M: groups}), true
	default:
		return histwalk.Factory{}, false
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "sampler:", err)
	os.Exit(1)
}
