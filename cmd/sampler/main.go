// Command sampler runs a sampling session over a dataset (built-in
// stand-in or an edge-list file) and reports the aggregate estimate,
// its confidence interval and relative error against ground truth, and
// the query-cost accounting.
//
// Usage:
//
//	sampler -dataset yelp -algo gnrw-reviews -budget 1000 -attr reviews_count
//	sampler -edges graph.txt -algo cnrw -budget 500
//	sampler -store graph.hwg -algo cnrw -budget 500
//	sampler -dataset gplus -algo cnrw -budget 500 -chains 8 -workers 4
//	sampler -dataset gplus -algo cnrw -budget 500 -chains 16 -shared-cache
//	sampler -dataset gplus -algo gnrw-degree -budget 500 -chains 16 -batched
//	sampler -dataset gplus -algo cnrw -budget 500 -latency 10ms -window 32
//	sampler -endpoint http://api.example.com -start 7 -algo cnrw -budget 200 -window 32
//
// The whole run is one declarative histwalk.Spec executed by
// histwalk.Run. With -chains N > 1 the session runs N independent
// walkers (each with its own cache and budget, the practical OSN
// deployment mode) on the parallel trial-execution engine, merges
// their estimates and reports the Gelman–Rubin convergence diagnostic;
// -workers caps the pool size without changing any result.
// -shared-cache pools the chains over one cross-chain crawl cache:
// estimates and per-chain budgets are bit-identical to the default
// isolated mode, but nodes a sibling chain already fetched are free,
// so the report shows the global network cost and the cross-chain hit
// rate alongside the chain-local accounting. -batched steps all chains
// in lockstep rounds on the SoA batch stepper: every trajectory, budget
// and estimate is bit-identical to the default per-chain mode — only
// the aggregate throughput profile differs.
//
// -store samples a packed .hwg binary graph store through the mmap
// backend: the walk starts without a text parse and the adjacency
// stays out of the heap, while every trajectory and estimate is
// bit-identical to sampling the equivalent in-memory graph (ground
// truth is read from a zero-copy view of the same mapping).
//
// -latency and -window exercise the pipelined access layer: -latency
// simulates a transport round trip per unique fetch, and -window N
// allows N speculative prefetches in flight, warming the walkers'
// candidate frontiers ahead of the walk. Every trajectory, estimate
// and chain-local query count is bit-identical for any window — the
// pipeline only changes wall-clock time, and the report shows the
// network-side stats (fetches, speculative waste, warm-hit rate).
//
// -endpoint crawls a live JSON neighbor-list API over HTTP instead of
// a local dataset (see internal/access/httpclient for the wire format
// and retry/backoff behavior; -auth-header/-auth-value attach a
// credential). All chains start at -start. Ground truth is unknowable
// over a remote API, so the report skips the relative-error line.
//
// Algorithms come from the shared registry (histwalk.WalkerNames) —
// the same names the histwalkd service accepts in job specs. SIGINT or
// SIGTERM cancels the run and prints the partial result accumulated so
// far instead of dying mid-walk.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"histwalk"
	"histwalk/internal/cliutil"
)

func main() {
	datasetName := flag.String("dataset", "facebook", "built-in dataset: "+strings.Join(histwalk.DatasetNames(), ", "))
	edges := flag.String("edges", "", "edge-list file (overrides -dataset)")
	store := flag.String("store", "", ".hwg graph store sampled via mmap (overrides -dataset)")
	algo := flag.String("algo", "cnrw", "algorithm: "+strings.Join(histwalk.WalkerNames(), ", "))
	budget := flag.Int("budget", 500, "unique-query budget per chain")
	attr := flag.String("attr", "degree", "measure attribute to aggregate (AVG)")
	seed := flag.Int64("seed", 1, "random seed")
	groups := flag.Int("groups", 5, "number of strata for GNRW")
	maxSteps := flag.Int("maxsteps", 0, "step cap per chain (0 = 200×budget)")
	burnIn := flag.Int("burnin", 0, "samples discarded per chain before estimating")
	chains := flag.Int("chains", 1, "independent parallel walkers (each with its own budget)")
	workers := flag.Int("workers", 0, "worker pool size for -chains > 1 (default: one per chain)")
	sharedCache := flag.Bool("shared-cache", false, "share one crawl cache across chains (identical estimates, lower global network cost)")
	batched := flag.Bool("batched", false, "step all chains in lockstep rounds on the batch stepper (identical results, higher aggregate throughput)")
	window := flag.Int("window", 0, "speculative prefetch window: max in-flight speculative fetches (0 = synchronous access)")
	latency := flag.Duration("latency", 0, "simulated transport round trip per unique fetch (e.g. 10ms; pipelines the local dataset)")
	endpoint := flag.String("endpoint", "", "live crawl: base URL of a JSON neighbor-list endpoint (overrides -dataset/-edges/-store)")
	startNode := flag.Int64("start", 0, "start node for -endpoint crawls (every chain starts here)")
	authHeader := flag.String("auth-header", "", "HTTP header name attached to every -endpoint request")
	authValue := flag.String("auth-value", "", "value for -auth-header")
	traceFile := flag.String("trace", "", "write JSONL lifecycle trace spans (chain start/finish, pipeline fetches) to this file")
	flag.Parse()

	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fail(fmt.Errorf("opening -trace file: %w", err))
		}
		tr := histwalk.NewTracer(f)
		histwalk.SetTracer(tr)
		// Tracing consumes no RNG and feeds nothing back into the walk:
		// the run's estimates and query costs are bit-identical with or
		// without -trace.
		defer func() {
			histwalk.SetTracer(nil)
			tr.Close()
		}()
	}

	if *chains < 1 {
		fail(fmt.Errorf("-chains must be >= 1, got %d", *chains))
	}
	if cliutil.ExplicitFlag("workers") && *workers < 1 {
		fail(fmt.Errorf("-workers must be >= 1, got %d", *workers))
	}
	if *budget < 1 {
		fail(fmt.Errorf("-budget must be >= 1, got %d", *budget))
	}

	// g is the in-memory view used for banner printing and ground
	// truth; src is the storage backend the walk runs on when -store
	// selected the out-of-core mode. In -endpoint mode there is no
	// local graph at all — the remote API is the only source.
	var src histwalk.GraphStore
	var g *histwalk.Graph
	var transport histwalk.Transport
	switch {
	case *endpoint != "":
		var err error
		transport, err = histwalk.NewHTTPTransport(histwalk.HTTPTransportConfig{
			BaseURL:    *endpoint,
			AuthHeader: *authHeader,
			AuthValue:  *authValue,
		})
		if err != nil {
			fail(err)
		}
	case *store != "":
		m, err := histwalk.OpenGraphStore(*store)
		if err != nil {
			fail(err)
		}
		defer m.Close()
		if g, err = m.Graph(); err != nil { // zero-copy view over the mapping
			fail(err)
		}
		src = m
	default:
		var err error
		if g, err = loadGraph(*edges, *datasetName, *seed); err != nil {
			fail(err)
		}
	}
	factory, err := histwalk.WalkerByName(*algo, histwalk.WalkerOptions{Groups: *groups})
	if err != nil {
		fail(err)
	}

	if g != nil {
		fmt.Printf("dataset %s: %d nodes, %d edges, avg degree %.2f\n",
			g.Name(), g.NumNodes(), g.NumEdges(), g.AvgDegree())
	} else {
		fmt.Printf("endpoint %s: live crawl from node %d\n", *endpoint, *startNode)
	}

	cache := histwalk.CacheIsolated
	if *sharedCache {
		cache = histwalk.CacheShared
	}
	stepping := histwalk.SteppingPerChain
	if *batched {
		stepping = histwalk.SteppingBatched
	}
	spec := histwalk.Spec{
		Walker:     factory,
		Estimators: []histwalk.EstimatorSpec{{Kind: histwalk.AggMean, Attr: *attr}},
		Budget:     *budget,
		MaxSteps:   *maxSteps,
		BurnIn:     *burnIn,
		Chains:     *chains,
		Cache:      cache,
		Stepping:   stepping,
		Workers:    *workers,
		Seed:       *seed,
		Confidence: 0.95,
		Window:     *window,
		Latency:    *latency,
	}
	switch {
	case transport != nil:
		spec.Transport = transport
		spec.Start = histwalk.Node(*startNode)
	case src != nil:
		spec.Store = src
	default:
		spec.Graph = g
	}
	// Drive the run under a signal-aware context: SIGINT/SIGTERM stops
	// every chain cleanly, and whatever samples accumulated merge into
	// a partial result below.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	sess, err := histwalk.NewSession(spec)
	if err != nil {
		fail(err)
	}
	interrupted := false
	res, err := sess.Drive(ctx, nil)
	if err != nil {
		if ctx.Err() == nil {
			fail(err)
		}
		interrupted = true
		stop() // a second signal kills the process the default way
		// Merge whatever the dispatched chains retained; chains the
		// interruption reached before their first sample are omitted.
		if res, err = sess.PartialResult(); err != nil {
			fail(fmt.Errorf("interrupted before any chain retained a sample: %w", err))
		}
		fmt.Printf("interrupted — reporting the partial result of the %d chain(s) sampled so far\n", len(res.Chains))
	}

	est := res.Estimates[0]
	fmt.Printf("algorithm        %s (estimator design: %s)\n", factory.Name, est.Design)
	budgetLabel := ""
	if *batched {
		budgetLabel = ", batched stepping"
	}
	if interrupted {
		budgetLabel += ", interrupted"
	}
	fmt.Printf("chains           %d × budget %d (workers %s%s)\n", *chains, *budget, workersLabel(*workers), budgetLabel)
	fmt.Printf("total steps      %d\n", res.TotalSteps)
	switch {
	case res.Pipeline != nil:
		st := res.Pipeline
		fmt.Printf("unique queries   %d chain-local (budgets), %d network fetches (%d speculative)\n",
			res.TotalQueries, st.NetworkFetches, st.SpeculativeFetches)
		if fresh := st.DemandMisses + st.DemandJoined + st.DemandWarm; fresh > 0 {
			fmt.Printf("pipeline         window %d: %d misses, %d joined in-flight, %d warm hits (%.1f%% of fresh demands stall-free)\n",
				*window, st.DemandMisses, st.DemandJoined, st.DemandWarm,
				100*float64(st.DemandWarm)/float64(fresh))
		}
	case *sharedCache:
		fmt.Printf("unique queries   %d chain-local (budgets), %d paid to the network\n", res.TotalQueries, res.GlobalQueries)
		fmt.Printf("shared cache     %d cross-chain hits (%.1f%% of chain-local queries saved)\n",
			res.CrossChainHits, 100*res.CrossChainHitRate)
	default:
		fmt.Printf("unique queries   %d (per-chain caches)\n", res.TotalQueries)
	}
	for i, c := range res.Chains {
		fmt.Printf("chain %-3d        start %d, %d steps, %d queries (%d cache hits), estimate %.4f\n",
			c.Chain, c.Start, c.Steps, c.Queries, c.Requests-c.Queries, est.PerChain[i])
	}
	if est.GelmanRubin > 0 {
		fmt.Printf("Gelman-Rubin R^  %.4f\n", est.GelmanRubin)
	}
	if est.HasInterval {
		fmt.Printf("95%% interval     [%.4f, %.4f]\n", est.Interval.Low, est.Interval.High)
	}
	if g != nil {
		truth := g.AvgDegree()
		if *attr != "degree" {
			truth, _ = g.MeanAttr(*attr)
		}
		fmt.Printf("AVG(%s)          pooled estimate %.4f, truth %.4f, relative error %.4f\n",
			*attr, est.Point, truth, histwalk.RelativeError(est.Point, truth))
	} else {
		fmt.Printf("AVG(%s)          pooled estimate %.4f (ground truth unknown over a remote endpoint)\n",
			*attr, est.Point)
	}
}

func workersLabel(w int) string {
	if w <= 0 {
		return "auto"
	}
	return fmt.Sprintf("%d", w)
}

func loadGraph(edges, name string, seed int64) (*histwalk.Graph, error) {
	if edges != "" {
		f, err := os.Open(edges)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		g, _, err := histwalk.ReadEdgeList(f)
		if err != nil {
			return nil, err
		}
		g.SetName(edges)
		return g.LargestComponent(), nil
	}
	g := histwalk.DatasetByName(name, seed)
	if g == nil {
		return nil, fmt.Errorf("unknown dataset %q (have: %s)", name, strings.Join(histwalk.DatasetNames(), ", "))
	}
	return g, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "sampler:", err)
	os.Exit(1)
}
