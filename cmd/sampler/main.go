// Command sampler runs a single random-walk sampling session over a
// dataset (built-in stand-in or an edge-list file) and reports the
// aggregate estimate, its relative error against ground truth, and the
// query-cost accounting.
//
// Usage:
//
//	sampler -dataset yelp -algo gnrw-reviews -budget 1000 -attr reviews_count
//	sampler -edges graph.txt -algo cnrw -budget 500
//	sampler -dataset gplus -algo cnrw -budget 500 -chains 8 -workers 4
//
// With -chains N > 1 the session runs N independent walkers (each with
// its own cache and budget, the practical OSN deployment mode) on the
// parallel trial-execution engine, merges their estimates and reports
// the Gelman–Rubin convergence diagnostic; -workers caps the pool size
// (0 = one worker per chain) without changing any result.
//
// Algorithms: srw, mhrw, nbsrw, cnrw, cnrw-node, nbcnrw, gnrw-degree,
// gnrw-md5, gnrw-reviews.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"histwalk"
	"histwalk/internal/ensemble"
	"histwalk/internal/experiment"
)

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func main() {
	datasetName := flag.String("dataset", "facebook", "built-in dataset: "+strings.Join(histwalk.DatasetNames(), ", "))
	edges := flag.String("edges", "", "edge-list file (overrides -dataset)")
	algo := flag.String("algo", "cnrw", "algorithm: srw, mhrw, nbsrw, cnrw, cnrw-node, nbcnrw, gnrw-degree, gnrw-md5, gnrw-reviews")
	budget := flag.Int("budget", 500, "unique-query budget")
	attr := flag.String("attr", "degree", "measure attribute to aggregate (AVG)")
	seed := flag.Int64("seed", 1, "random seed")
	groups := flag.Int("groups", 5, "number of strata for GNRW")
	maxSteps := flag.Int("maxsteps", 0, "step cap (0 = 200×budget)")
	chains := flag.Int("chains", 1, "independent parallel walkers (each with its own budget)")
	workers := flag.Int("workers", 0, "worker pool size for -chains > 1 (0 = one per chain)")
	flag.Parse()

	g, err := loadGraph(*edges, *datasetName, *seed)
	if err != nil {
		fail(err)
	}
	factory, ok := factoryFor(*algo, *groups)
	if !ok {
		fail(fmt.Errorf("unknown algorithm %q", *algo))
	}

	fmt.Printf("dataset %s: %d nodes, %d edges, avg degree %.2f\n",
		g.Name(), g.NumNodes(), g.NumEdges(), g.AvgDegree())

	if *chains > 1 {
		runEnsemble(g, factory, *attr, *budget, *maxSteps, *chains, *workers, *seed)
		return
	}

	rng := newRand(*seed)
	start := histwalk.Node(rng.Intn(g.NumNodes()))
	for g.Degree(start) == 0 {
		start = histwalk.Node(rng.Intn(g.NumNodes()))
	}
	sim := histwalk.NewSimulator(g)
	walker := factory.New(sim, start, rng)
	design := experiment.DesignFor(factory.Name)
	mean := histwalk.NewMean(design)

	cap := *maxSteps
	if cap <= 0 {
		cap = 200 * *budget
	}
	steps := 0
	for sim.QueryCost() < *budget && steps < cap {
		v, err := walker.Step()
		if err != nil {
			fail(fmt.Errorf("step %d: %w", steps, err))
		}
		val := float64(g.Degree(v))
		if *attr != "degree" {
			x, ok := g.AttrValue(*attr, v)
			if !ok {
				fail(fmt.Errorf("dataset lacks attribute %q", *attr))
			}
			val = x
		}
		if err := mean.Add(val, g.Degree(v)); err != nil {
			fail(err)
		}
		steps++
	}

	est, err := mean.Estimate()
	if err != nil {
		fail(err)
	}
	truth := g.AvgDegree()
	if *attr != "degree" {
		truth, _ = g.MeanAttr(*attr)
	}
	fmt.Printf("algorithm        %s (estimator design: %s)\n", factory.Name, design)
	fmt.Printf("start node       %d\n", start)
	fmt.Printf("steps            %d\n", steps)
	fmt.Printf("unique queries   %d (budget %d)\n", sim.QueryCost(), *budget)
	fmt.Printf("cache hits       %d\n", sim.TotalRequests()-sim.QueryCost())
	fmt.Printf("AVG(%s)          estimate %.4f, truth %.4f, relative error %.4f\n",
		*attr, est, truth, histwalk.RelativeError(est, truth))
}

// runEnsemble runs the multi-chain session: chains independent walkers
// fan out on the trial-execution engine, each with its own simulator
// cache and unique-query budget, and the estimates are merged.
func runEnsemble(g *histwalk.Graph, factory histwalk.Factory, attr string, budget, maxSteps, chains, workers int, seed int64) {
	design := experiment.DesignFor(factory.Name)
	res, err := ensemble.Run(ensemble.Config{
		Graph:            g,
		Factory:          factory,
		Design:           design,
		Attr:             attr,
		Chains:           chains,
		BudgetPerChain:   budget,
		MaxStepsPerChain: maxSteps,
		Seed:             seed,
		Parallelism:      workers,
	})
	if err != nil {
		fail(err)
	}
	truth := g.AvgDegree()
	if attr != "degree" {
		truth, _ = g.MeanAttr(attr)
	}
	fmt.Printf("algorithm        %s (estimator design: %s)\n", factory.Name, design)
	fmt.Printf("chains           %d × budget %d (workers %s)\n", chains, budget, workersLabel(workers))
	fmt.Printf("total steps      %d\n", res.TotalSteps)
	fmt.Printf("unique queries   %d (per-chain caches)\n", res.TotalQueries)
	for i, e := range res.PerChain {
		fmt.Printf("chain %-3d        estimate %.4f\n", i, e)
	}
	if res.GelmanRubin > 0 {
		fmt.Printf("Gelman-Rubin R^  %.4f\n", res.GelmanRubin)
	}
	fmt.Printf("AVG(%s)          pooled estimate %.4f, truth %.4f, relative error %.4f\n",
		attr, res.Estimate, truth, histwalk.RelativeError(res.Estimate, truth))
}

func workersLabel(w int) string {
	if w <= 0 {
		return "auto"
	}
	return fmt.Sprintf("%d", w)
}

func loadGraph(edges, name string, seed int64) (*histwalk.Graph, error) {
	if edges != "" {
		f, err := os.Open(edges)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		g, _, err := histwalk.ReadEdgeList(f)
		if err != nil {
			return nil, err
		}
		g.SetName(edges)
		return g.LargestComponent(), nil
	}
	g := histwalk.DatasetByName(name, seed)
	if g == nil {
		return nil, fmt.Errorf("unknown dataset %q (have: %s)", name, strings.Join(histwalk.DatasetNames(), ", "))
	}
	return g, nil
}

func factoryFor(algo string, groups int) (histwalk.Factory, bool) {
	switch algo {
	case "srw":
		return histwalk.SRWFactory(), true
	case "mhrw":
		return histwalk.MHRWFactory(), true
	case "nbsrw":
		return histwalk.NBSRWFactory(), true
	case "cnrw":
		return histwalk.CNRWFactory(), true
	case "cnrw-node":
		return histwalk.CNRWNodeFactory(), true
	case "nbcnrw":
		return histwalk.NBCNRWFactory(), true
	case "gnrw-degree":
		return histwalk.GNRWFactory(histwalk.DegreeGrouper{M: groups}), true
	case "gnrw-md5":
		return histwalk.GNRWFactory(histwalk.HashGrouper{M: groups}), true
	case "gnrw-reviews":
		return histwalk.GNRWFactory(histwalk.AttrGrouper{Attr: histwalk.AttrReviews, M: groups}), true
	default:
		return histwalk.Factory{}, false
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "sampler:", err)
	os.Exit(1)
}
