// Package histwalk is a library for sampling online social networks
// through their restrictive neighborhood-query interfaces, implementing
// the history-aware random walks of
//
//	Zhuojie Zhou, Nan Zhang, Gautam Das:
//	"Leveraging History for Faster Sampling of Online Social Networks",
//	VLDB 2015 (arXiv:1505.00079).
//
// The package exposes:
//
//   - the two proposed samplers, CNRW (Circulated Neighbors Random
//     Walk) and GNRW (GroupBy Neighbors Random Walk), plus the SRW,
//     MHRW and NB-SRW baselines and the NB-CNRW extension — all behind
//     a single Walker interface;
//   - an undirected graph substrate with synthetic generators and
//     edge-list I/O;
//   - a simulated OSN access model that counts unique queries exactly
//     as the paper's query-cost metric does;
//   - unbiased estimators for population aggregates under
//     degree-proportional (SRW-family) and uniform (MHRW) sampling;
//   - a declarative sampling-run API (Spec, Run, Session): one entry
//     point that validates a run description — data source, walker,
//     estimators, budget, burn-in, chains, master seed — executes it on
//     the parallel engine, and returns pooled and per-chain estimates
//     with confidence intervals and exact query-cost accounting;
//   - a deterministic worker-pool trial-execution engine (Engine, Job,
//     RunParallel) that fans independent seeded trials out over all
//     cores while keeping results bit-identical for any worker count;
//   - a sampling-job service (Manager, NewServiceHandler, cmd/histwalkd):
//     serialized specs (SpecJSON) submitted over an HTTP JSON API run
//     concurrently with bounded parallelism, stream per-chain progress
//     over SSE, and return Results bit-identical to a direct Run —
//     walkers and estimators resolve through the shared name registry
//     (WalkerByName, EstimatorByName);
//   - the full experiment harness that regenerates every table and
//     figure of the paper's evaluation, with every trial loop running
//     on the engine (cmd/repro -workers selects the pool size).
//
// Quick start — describe the run, then execute it:
//
//	g := histwalk.BarabasiAlbert(10000, 5, rand.New(rand.NewSource(1)))
//	res, err := histwalk.Run(ctx, histwalk.Spec{
//	    Graph:  g,
//	    Walker: histwalk.CNRWFactory(),
//	    Budget: 500, // unique queries per chain (§2.3 cost metric)
//	    Chains: 4,   // independent crawlers on the parallel engine
//	    Seed:   1,
//	})
//	est := res.Estimates[0] // avg(degree) by default
//	// est.Point ≈ g.AvgDegree(), est.Interval is its 95% CI
//
// For online consumers, NewSession runs the same Spec one transition
// at a time (Next) with streaming Progress callbacks, and its final
// Result is identical to Run's. The pre-session manual style —
// NewSimulator + NewCNRW + estimator + hand-written budget loop — still
// compiles and works, as do the deprecated ensemble shims
// (EnsembleConfig, RunEnsemble); new code should prefer Spec/Run.
//
// # Multi-chain crawling and the shared cache
//
// A Spec with Chains > 1 models a fleet of crawler accounts. By
// default (CacheIsolated) every chain has its own cache and pays its
// own unique queries — the network cost is the sum of the chains'
// costs. A real deployment with one local cache does better: once any
// chain has fetched a node's neighborhood, sibling chains read it for
// free. Setting Cache: CacheShared runs all chains over one
// concurrency-safe shared crawl cache (SharedSimulator, queried
// through per-chain Views):
//
//	res, err := histwalk.Run(ctx, histwalk.Spec{
//	    Graph:  g,
//	    Walker: histwalk.CNRWFactory(),
//	    Budget: 500,
//	    Chains: 16,
//	    Cache:  histwalk.CacheShared,
//	    Seed:   1,
//	})
//	// res.TotalQueries  — sum of chain-local unique queries (budgets)
//	// res.GlobalQueries — network fetches actually paid; strictly less
//	//                     than TotalQueries whenever chains overlap
//	// res.CrossChainHitRate — share of would-be fetches the cache saved
//
// The two cost levels are deliberately distinct. Budgets stay
// per-chain: each chain's spend counts the queries *it* issued for
// nodes *it* had not seen, exactly as with isolated caches, so
// per-chain rate/budget semantics (Budgeted) are unchanged. The
// shared layer only changes who pays the network. Because cache state
// never alters the neighbor data a walker sees, chain trajectories,
// estimates and budget accounting are bit-identical between
// CacheShared and CacheIsolated for any Workers value — switching the
// policy is purely an infrastructure decision, verified by the
// internal/session tests and the BenchmarkSharedVsIsolatedChains
// benchmark.
//
// The subpackages under internal/ hold the implementation; this package
// re-exports everything a downstream user needs.
package histwalk

import (
	"io"
	"math/rand"

	"histwalk/internal/access"
	"histwalk/internal/core"
	"histwalk/internal/engine"
	"histwalk/internal/estimate"
	"histwalk/internal/graph"
)

// Node identifies a vertex; nodes are dense integers in [0, NumNodes).
type Node = graph.Node

// Graph is an immutable simple undirected graph with per-node
// attributes. See Builder and the generator functions for construction.
type Graph = graph.Graph

// Builder incrementally accumulates edges and produces a Graph.
type Builder = graph.Builder

// Digraph is an immutable simple directed graph; cast it to the
// undirected access model with Mutual (the paper's §6.1 conversion) or
// Either (§2.1's alternative).
type Digraph = graph.Digraph

// DigraphBuilder incrementally accumulates arcs and produces a Digraph.
type DigraphBuilder = graph.DigraphBuilder

// NewDigraphBuilder returns a DigraphBuilder pre-sized for n nodes.
func NewDigraphBuilder(n int) *DigraphBuilder { return graph.NewDigraphBuilder(n) }

// ReadDirectedEdgeList parses "u v" arc lines into a Digraph.
func ReadDirectedEdgeList(r io.Reader) (*Digraph, map[int64]Node, error) {
	return graph.ReadDirectedEdgeList(r)
}

// Summary holds one dataset's Table 1 statistics row.
type Summary = graph.Summary

// NewBuilder returns a Builder pre-sized for n nodes.
func NewBuilder(n int) *Builder { return graph.NewBuilder(n) }

// FromEdges builds a graph with n nodes from an explicit edge list.
func FromEdges(n int, edges [][2]Node) *Graph { return graph.FromEdges(n, edges) }

// ReadEdgeList parses a SNAP-style undirected edge list; node IDs are
// densely relabeled and the original→dense mapping is returned.
func ReadEdgeList(r io.Reader) (*Graph, map[int64]Node, error) { return graph.ReadEdgeList(r) }

// WriteEdgeList writes g as "u v" text lines.
func WriteEdgeList(w io.Writer, g *Graph) error { return graph.WriteEdgeList(w, g) }

// ReadAttr parses "node value" attribute lines for a graph with n
// nodes.
func ReadAttr(r io.Reader, n int) ([]float64, error) { return graph.ReadAttr(r, n) }

// WriteAttr writes an attribute vector as "node value" lines.
func WriteAttr(w io.Writer, name string, values []float64) error {
	return graph.WriteAttr(w, name, values)
}

// Generators (see internal/graph for details).
var (
	// Complete returns the complete graph K_n.
	Complete = graph.Complete
	// Barbell returns two K_k cliques joined by one bridge edge.
	Barbell = graph.Barbell
	// ClusteredCliques chains complete subgraphs with bridge edges.
	ClusteredCliques = graph.ClusteredCliques
	// ErdosRenyi returns a G(n,p) random graph.
	ErdosRenyi = graph.ErdosRenyi
	// GNM returns a uniform random graph with n nodes and m edges.
	GNM = graph.GNM
	// BarabasiAlbert returns a preferential-attachment graph.
	BarabasiAlbert = graph.BarabasiAlbert
	// HolmeKim returns a preferential-attachment graph with tunable
	// clustering (triad closure).
	HolmeKim = graph.HolmeKim
	// PowerLawCommunities returns an OSN-like graph with heavy-tailed
	// community sizes, dense blocks and preferential global links.
	PowerLawCommunities = graph.PowerLawCommunities
	// WattsStrogatz returns a small-world ring-rewiring graph.
	WattsStrogatz = graph.WattsStrogatz
	// PlantedPartition returns a stochastic block model graph.
	PlantedPartition = graph.PlantedPartition
	// Star returns the star graph on n nodes.
	Star = graph.Star
	// Cycle returns the n-cycle.
	Cycle = graph.Cycle
	// Path returns the n-node path.
	Path = graph.Path
	// Grid returns the rows×cols lattice.
	Grid = graph.Grid
)

// Client is the restricted OSN query interface available to samplers:
// local neighborhood queries, free neighbor-list summaries, and a
// unique-query cost counter.
type Client = access.Client

// Simulator is an in-memory Client over a Graph with exact unique-query
// accounting.
type Simulator = access.Simulator

// SharedSimulator is a concurrency-safe shared crawl cache over one
// Graph: many chains query it through per-chain Views, chain-local
// accounting stays exact, and the global counters report what the
// whole fleet actually paid the network.
type SharedSimulator = access.SharedSimulator

// View is one chain's window onto a SharedSimulator, implementing
// Client with chain-local unique-query accounting identical to a
// private Simulator's.
type View = access.View

// Budgeted wraps a Client with a hard unique-query budget.
type Budgeted = access.Budgeted

// RateLimiter simulates an OSN's query-rate limit on a virtual clock.
type RateLimiter = access.RateLimiter

// NewSimulator returns a Simulator over g.
func NewSimulator(g *Graph) *Simulator { return access.NewSimulator(g) }

// NewSharedSimulator returns a shared cross-chain crawl cache over g;
// take one View per chain.
func NewSharedSimulator(g *Graph) *SharedSimulator { return access.NewSharedSimulator(g) }

// NewBudgeted wraps inner with a unique-query budget.
func NewBudgeted(inner Client, budget int) *Budgeted { return access.NewBudgeted(inner, budget) }

// NewRateLimiter returns a limiter allowing calls queries per window.
var NewRateLimiter = access.NewRateLimiter

// ErrBudgetExhausted is returned by Budgeted clients once the budget is
// spent.
var ErrBudgetExhausted = access.ErrBudgetExhausted

// Walker is one random-walk sampler in progress.
type Walker = core.Walker

// Factory constructs fresh walkers for experiment trials.
type Factory = core.Factory

// Grouper is GNRW's neighbor-stratification strategy.
type Grouper = core.Grouper

// Concrete walker types.
type (
	// SRW is the simple random walk (uniform neighbor, order 1).
	SRW = core.SRW
	// MHRW is the Metropolis–Hastings walk (uniform target).
	MHRW = core.MHRW
	// NBSRW is the non-backtracking simple random walk (order 2).
	NBSRW = core.NBSRW
	// CNRW is the paper's Circulated Neighbors Random Walk.
	CNRW = core.CNRW
	// GNRW is the paper's GroupBy Neighbors Random Walk.
	GNRW = core.GNRW
	// NBCNRW is CNRW layered on the non-backtracking walk (§5).
	NBCNRW = core.NBCNRW
	// CNRWNode is the node-keyed circulation ablation variant.
	CNRWNode = core.CNRWNode
)

// Grouping strategies for GNRW.
type (
	// HashGrouper assigns neighbors to random groups by MD5 of the ID.
	HashGrouper = core.HashGrouper
	// DegreeGrouper stratifies neighbors by their degree.
	DegreeGrouper = core.DegreeGrouper
	// AttrGrouper stratifies neighbors by a profile attribute.
	AttrGrouper = core.AttrGrouper
	// WidthGrouper stratifies by fixed-width attribute ranges.
	WidthGrouper = core.WidthGrouper
)

// NewSRW returns a simple random walk starting at start.
func NewSRW(c Client, start Node, rng *rand.Rand) *SRW { return core.NewSRW(c, start, rng) }

// NewMHRW returns a Metropolis–Hastings walk starting at start.
func NewMHRW(c Client, start Node, rng *rand.Rand) *MHRW { return core.NewMHRW(c, start, rng) }

// NewNBSRW returns a non-backtracking walk starting at start.
func NewNBSRW(c Client, start Node, rng *rand.Rand) *NBSRW { return core.NewNBSRW(c, start, rng) }

// NewCNRW returns a circulated-neighbors walk starting at start.
func NewCNRW(c Client, start Node, rng *rand.Rand) *CNRW { return core.NewCNRW(c, start, rng) }

// NewGNRW returns a groupby-neighbors walk with the given grouping
// strategy starting at start.
func NewGNRW(c Client, g Grouper, start Node, rng *rand.Rand) *GNRW {
	return core.NewGNRW(c, g, start, rng)
}

// NewNBCNRW returns a non-backtracking circulated walk starting at
// start.
func NewNBCNRW(c Client, start Node, rng *rand.Rand) *NBCNRW { return core.NewNBCNRW(c, start, rng) }

// NewCNRWNode returns the node-keyed circulation ablation walker.
func NewCNRWNode(c Client, start Node, rng *rand.Rand) *CNRWNode {
	return core.NewCNRWNode(c, start, rng)
}

// Walker factories for experiment fan-out.
var (
	// SRWFactory builds SRW walkers.
	SRWFactory = core.SRWFactory
	// MHRWFactory builds MHRW walkers.
	MHRWFactory = core.MHRWFactory
	// NBSRWFactory builds NB-SRW walkers.
	NBSRWFactory = core.NBSRWFactory
	// CNRWFactory builds CNRW walkers.
	CNRWFactory = core.CNRWFactory
	// CNRWNodeFactory builds node-keyed CNRW walkers (ablation).
	CNRWNodeFactory = core.CNRWNodeFactory
	// NBCNRWFactory builds NB-CNRW walkers.
	NBCNRWFactory = core.NBCNRWFactory
	// GNRWFactory builds GNRW walkers with a grouping strategy.
	GNRWFactory = core.GNRWFactory
)

// Batched multi-chain stepping (the engine behind SteppingBatched).
type (
	// BatchStepper advances K walkers in lockstep rounds over one
	// underlying graph, sorting each round by current node so CSR row
	// reads gather in ascending offset order and same-node chains share
	// one fetch. Per-chain trajectories and query costs are
	// bit-identical to stepping each walker alone — only the
	// cross-chain interleaving changes.
	BatchStepper = core.BatchStepper
	// BatchChain pairs one walker with the client it was built over.
	BatchChain = core.BatchChain
	// BatchOptions configures a BatchStepper; set ShareRows when all
	// chains' clients wrap one underlying graph.
	BatchOptions = core.BatchOptions
)

// NewBatchStepper builds a lockstep stepper over the given chains. It
// fails for walkers that do not support batched stepping (the frontier
// samplers); all registry walkers do.
func NewBatchStepper(chains []BatchChain, opts BatchOptions) (*BatchStepper, error) {
	return core.NewBatchStepper(chains, opts)
}

// Design identifies a sampler's stationary distribution for estimation.
type Design = estimate.Design

// Estimator designs.
const (
	// DegreeProportional marks samples with π(v) ∝ k_v (SRW, NB-SRW,
	// CNRW, GNRW).
	DegreeProportional = estimate.DegreeProportional
	// Uniform marks samples with uniform π (MHRW).
	Uniform = estimate.Uniform
)

// Estimators.
type (
	// Mean estimates a population mean with design-appropriate
	// reweighting.
	Mean = estimate.Mean
	// AvgDegree estimates the population average degree.
	AvgDegree = estimate.AvgDegree
	// Proportion estimates a population fraction.
	Proportion = estimate.Proportion
	// MeanCI is a Mean with batch-means confidence intervals.
	MeanCI = estimate.MeanCI
	// Interval is a confidence interval around a point estimate.
	Interval = estimate.Interval
	// ConditionalMean estimates a conditional (sub-population)
	// aggregate.
	ConditionalMean = estimate.ConditionalMean
)

// NewMean returns a mean estimator for the given design.
func NewMean(d Design) *Mean { return estimate.NewMean(d) }

// NewAvgDegree returns an average-degree estimator for the given design.
func NewAvgDegree(d Design) *AvgDegree { return estimate.NewAvgDegree(d) }

// NewProportion returns a proportion estimator for the given design.
func NewProportion(d Design) *Proportion { return estimate.NewProportion(d) }

// NewMeanCI returns a mean estimator with batch-means confidence
// intervals.
func NewMeanCI(d Design, batch int) (*MeanCI, error) { return estimate.NewMeanCI(d, batch) }

// NewConditionalMean returns a conditional-aggregate estimator.
func NewConditionalMean(d Design) *ConditionalMean { return estimate.NewConditionalMean(d) }

// MeanFromPath estimates a population mean from a complete sample path.
var MeanFromPath = estimate.MeanFromPath

// RelativeError returns |est−truth|/|truth|.
var RelativeError = estimate.RelativeError

// Parallel trial execution (see internal/engine).
type (
	// Engine is the deterministic worker-pool trial runner every
	// experiment loop submits to.
	Engine = engine.Engine
	// EngineOptions configures an Engine (worker count, progress
	// callback).
	EngineOptions = engine.Options
	// Job specifies a batch of independent seeded walk trials.
	Job = engine.Job
	// TrialResult is one trial's budget-checkpoint snapshots.
	TrialResult = engine.TrialResult
)

// NewEngine returns an Engine with the given options.
func NewEngine(opts EngineOptions) *Engine { return engine.New(opts) }

// RunParallel runs a Job's trials on a fresh pool of the given size
// (0 = GOMAXPROCS). For any fixed Job the results are bit-identical
// regardless of worker count.
var RunParallel = engine.RunParallel

// TrialSeed derives trial t's RNG seed from a master seed and a stream
// identifier via a splitmix64 mixer (scheduling-independent).
var TrialSeed = engine.TrialSeed

// StreamID hashes experiment labels into a seed-stream identifier, so
// experiments sharing a master seed draw disjoint seed sequences.
var StreamID = engine.StreamID
